//! Property tests for RDFS saturation: soundness, idempotence, monotonicity
//! and extension coherence on random schemas.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_rdf::{vocabulary as voc, Term, TripleStore, UriId};

/// Random store: a class DAG, property hierarchy, domains/ranges, instance
/// assertions. Returns the store (unsaturated).
fn random_store(seed: u64) -> TripleStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut st = TripleStore::new();
    let classes: Vec<UriId> =
        (0..rng.gen_range(2..8)).map(|i| st.dictionary_mut().intern(&format!("C{i}"))).collect();
    let props: Vec<UriId> =
        (0..rng.gen_range(1..5)).map(|i| st.dictionary_mut().intern(&format!("p{i}"))).collect();
    let entities: Vec<UriId> =
        (0..rng.gen_range(2..10)).map(|i| st.dictionary_mut().intern(&format!("e{i}"))).collect();
    // Subclass edges to earlier classes only (acyclic by construction,
    // though cycles are also legal — covered by a dedicated test).
    for (i, &c) in classes.iter().enumerate().skip(1) {
        if rng.gen_bool(0.7) {
            let parent = classes[rng.gen_range(0..i)];
            st.insert(c, voc::RDFS_SUBCLASS_OF, Term::Uri(parent), 1.0);
        }
    }
    for (i, &p) in props.iter().enumerate().skip(1) {
        if rng.gen_bool(0.5) {
            let parent = props[rng.gen_range(0..i)];
            st.insert(p, voc::RDFS_SUBPROPERTY_OF, Term::Uri(parent), 1.0);
        }
    }
    for &p in &props {
        if rng.gen_bool(0.4) {
            st.insert(
                p,
                voc::RDFS_DOMAIN,
                Term::Uri(classes[rng.gen_range(0..classes.len())]),
                1.0,
            );
        }
        if rng.gen_bool(0.4) {
            st.insert(p, voc::RDFS_RANGE, Term::Uri(classes[rng.gen_range(0..classes.len())]), 1.0);
        }
    }
    for &e in &entities {
        if rng.gen_bool(0.8) {
            st.insert(e, voc::RDF_TYPE, Term::Uri(classes[rng.gen_range(0..classes.len())]), 1.0);
        }
        if rng.gen_bool(0.6) {
            let p = props[rng.gen_range(0..props.len())];
            let o = entities[rng.gen_range(0..entities.len())];
            st.insert(e, p, Term::Uri(o), 1.0);
        }
    }
    st
}

/// One immediate-entailment step applied manually: is `t` justified by some
/// rule over `base`?
fn justified(base: &TripleStore, t: &s3_rdf::Triple) -> bool {
    let certain = |s: UriId, p: UriId, o: Term| base.weight(s, p, o) == Some(1.0);
    // SC-T / TYPE via some intermediate b.
    if t.p == voc::RDFS_SUBCLASS_OF || t.p == voc::RDF_TYPE {
        let join_p =
            if t.p == voc::RDFS_SUBCLASS_OF { voc::RDFS_SUBCLASS_OF } else { voc::RDF_TYPE };
        for (b, w) in base.objects(t.s, join_p) {
            if w == 1.0 {
                if let Some(b) = b.as_uri() {
                    if certain(b, voc::RDFS_SUBCLASS_OF, t.o) {
                        return true;
                    }
                }
            }
        }
    }
    // SP-T.
    if t.p == voc::RDFS_SUBPROPERTY_OF {
        for (b, w) in base.objects(t.s, voc::RDFS_SUBPROPERTY_OF) {
            if w == 1.0 {
                if let Some(b) = b.as_uri() {
                    if certain(b, voc::RDFS_SUBPROPERTY_OF, t.o) {
                        return true;
                    }
                }
            }
        }
    }
    // PROP: s p' o with p' ≺sp t.p.
    for (p_sub, w) in base.subjects(voc::RDFS_SUBPROPERTY_OF, Term::Uri(t.p)) {
        if w == 1.0 && certain(t.s, p_sub, t.o) {
            return true;
        }
    }
    // DOM/RNG: t = (x type C).
    if t.p == voc::RDF_TYPE {
        if let Some(c) = t.o.as_uri() {
            for wt in base.iter().filter(|wt| wt.is_certain()) {
                let tr = wt.triple;
                if certain(tr.p, voc::RDFS_DOMAIN, Term::Uri(c)) && tr.s == t.s {
                    return true;
                }
                if certain(tr.p, voc::RDFS_RANGE, Term::Uri(c)) && tr.o == Term::Uri(t.s) {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    /// Saturation terminates and is idempotent.
    #[test]
    fn saturation_idempotent(seed in 0u64..3000) {
        let mut st = random_store(seed);
        st.saturate();
        let after_first = st.len();
        prop_assert_eq!(st.saturate(), 0);
        prop_assert_eq!(st.len(), after_first);
    }

    /// Soundness: every derived triple is justified by an entailment rule
    /// over the saturated store (a fixpoint check).
    #[test]
    fn saturation_sound(seed in 0u64..1500) {
        let base = random_store(seed);
        let mut st = base.clone();
        st.saturate();
        for wt in st.iter() {
            let t = wt.triple;
            if base.contains(t.s, t.p, t.o) {
                continue; // originally asserted
            }
            prop_assert!(justified(&st, &t), "underived justification for {t:?}");
        }
    }

    /// Monotonicity: adding triples never removes derived ones.
    #[test]
    fn saturation_monotone(seed in 0u64..1500) {
        let mut small = random_store(seed);
        small.saturate();
        let mut big = random_store(seed);
        // Extra assertion.
        let extra_s = big.dictionary_mut().intern("extra:s");
        let extra_c = big.dictionary_mut().intern("C0");
        big.insert(extra_s, voc::RDF_TYPE, Term::Uri(extra_c), 1.0);
        big.saturate();
        for wt in small.iter().filter(|t| t.is_certain()) {
            let t = wt.triple;
            prop_assert!(
                big.weight(t.s, t.p, t.o) == Some(1.0),
                "monotonicity violated for {t:?}"
            );
        }
    }

    /// Ext(k) is exactly { k } ∪ subjects of type/≺sc/≺sp triples into k.
    #[test]
    fn extension_definition(seed in 0u64..1500) {
        let mut st = random_store(seed);
        st.saturate();
        let uris: Vec<UriId> = st.dictionary().iter().map(|(id, _)| id).collect();
        for &k in uris.iter().take(20) {
            let ext = st.extension(k);
            prop_assert_eq!(ext[0], k);
            for &b in &ext[1..] {
                let in_def = st.weight(b, voc::RDF_TYPE, Term::Uri(k)) == Some(1.0)
                    || st.weight(b, voc::RDFS_SUBCLASS_OF, Term::Uri(k)) == Some(1.0)
                    || st.weight(b, voc::RDFS_SUBPROPERTY_OF, Term::Uri(k)) == Some(1.0);
                prop_assert!(in_def, "{b} not justified in Ext({k})");
            }
        }
    }
}
