//! URI dictionary: interning of URIs (and literal spellings) to dense ids.
//!
//! The paper assumes a set `U` of URIs and a disjoint set `L` of literals
//! (§2, "URIs and literals"). We intern both kinds of strings into one
//! dictionary and keep the distinction in [`crate::Term`]; dictionary ids
//! are dense `u32`s so downstream structures can use plain vectors.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned URI (or literal spelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UriId(pub u32);

impl UriId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UriId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uri{}", self.0)
    }
}

/// Bidirectional URI ↔ id mapping. The built-in RDF/RDFS/S3 vocabulary
/// (see [`crate::vocabulary`]) occupies the first ids of every dictionary,
/// so the vocabulary constants are valid in any store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dictionary {
    by_text: HashMap<String, UriId>,
    texts: Vec<String>,
}

impl Dictionary {
    /// A dictionary pre-populated with the built-in vocabulary.
    pub fn new() -> Self {
        let mut dict = Dictionary { by_text: HashMap::new(), texts: Vec::new() };
        for uri in crate::vocabulary::BUILTIN_URIS {
            dict.intern(uri);
        }
        dict
    }

    /// Intern a URI, returning its stable id.
    pub fn intern(&mut self, text: &str) -> UriId {
        if let Some(&id) = self.by_text.get(text) {
            return id;
        }
        let id = UriId(self.texts.len() as u32);
        self.by_text.insert(text.to_string(), id);
        self.texts.push(text.to_string());
        id
    }

    /// Look up an already-interned URI.
    pub fn get(&self, text: &str) -> Option<UriId> {
        self.by_text.get(text).copied()
    }

    /// The text of an id.
    pub fn text(&self, id: UriId) -> &str {
        &self.texts[id.index()]
    }

    /// Number of interned URIs (including the built-in vocabulary).
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Always false: the built-in vocabulary is present.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Iterate over all `(id, text)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (UriId, &str)> + '_ {
        self.texts.iter().enumerate().map(|(i, t)| (UriId(i as u32), t.as_str()))
    }

    /// Serialize for the durable snapshot format: interned texts in id
    /// order (the text→id index is rebuilt on read).
    pub fn snap_write(&self, out: &mut Vec<u8>) {
        s3_snap::put_usize(out, self.texts.len());
        for text in &self.texts {
            s3_snap::put_str(out, text);
        }
    }

    /// Decode a dictionary written by [`Self::snap_write`]. The built-in
    /// vocabulary prefix is verified so the vocabulary constants stay
    /// valid. Never panics on malformed input.
    pub fn snap_read(r: &mut s3_snap::SnapReader<'_>) -> Result<Self, s3_snap::SnapError> {
        let n = r.seq(1)?;
        if n < crate::vocabulary::BUILTIN_URIS.len() {
            return Err(s3_snap::SnapError::Value("dictionary misses the built-in vocabulary"));
        }
        let mut d = Dictionary { by_text: HashMap::with_capacity(n), texts: Vec::with_capacity(n) };
        for i in 0..n {
            let text = r.str()?;
            if let Some(&builtin) = crate::vocabulary::BUILTIN_URIS.get(i) {
                if text != builtin {
                    return Err(s3_snap::SnapError::Value("built-in vocabulary prefix mismatch"));
                }
            }
            if d.by_text.insert(text.to_owned(), UriId(i as u32)).is_some() {
                return Err(s3_snap::SnapError::Value("duplicate dictionary text"));
            }
            d.texts.push(text.to_owned());
        }
        Ok(d)
    }
}

impl Default for Dictionary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary as voc;

    #[test]
    fn builtin_vocabulary_has_fixed_ids() {
        let d = Dictionary::new();
        assert_eq!(d.get("rdf:type"), Some(voc::RDF_TYPE));
        assert_eq!(d.get("S3:social"), Some(voc::S3_SOCIAL));
        assert_eq!(d.text(voc::S3_PART_OF), "S3:partOf");
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let mut d = Dictionary::new();
        let base = d.len() as u32;
        let a = d.intern("ex:a");
        let b = d.intern("ex:b");
        assert_eq!(a, UriId(base));
        assert_eq!(b, UriId(base + 1));
        assert_eq!(d.intern("ex:a"), a);
        assert_eq!(d.text(a), "ex:a");
    }

    #[test]
    fn two_dictionaries_agree_on_builtins() {
        let d1 = Dictionary::new();
        let d2 = Dictionary::new();
        for (id, text) in d1.iter().take(voc::BUILTIN_URIS.len()) {
            assert_eq!(d2.get(text), Some(id));
        }
    }
}
