//! The weighted triple store.
//!
//! A straightforward in-memory store with the three access paths the rest of
//! the system needs: by subject+property, by property+object, and by
//! property. Duplicate `(s,p,o)` insertions keep the **maximum** weight
//! (weights encode certainty/strength; re-asserting a fact can only
//! strengthen it, and in particular a weight-1 assertion dominates).

use crate::dict::{Dictionary, UriId};
use crate::triple::{Term, Triple, WeightedTriple};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// In-memory weighted triple store with a private [`Dictionary`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TripleStore {
    dict: Dictionary,
    triples: Vec<WeightedTriple>,
    by_triple: HashMap<Triple, u32>,
    by_sp: HashMap<(UriId, UriId), Vec<u32>>,
    by_po: HashMap<(UriId, Term), Vec<u32>>,
    by_p: HashMap<UriId, Vec<u32>>,
    saturated: bool,
}

impl TripleStore {
    /// Empty store (dictionary holds the built-in vocabulary).
    pub fn new() -> Self {
        TripleStore {
            dict: Dictionary::new(),
            triples: Vec::new(),
            by_triple: HashMap::new(),
            by_sp: HashMap::new(),
            by_po: HashMap::new(),
            by_p: HashMap::new(),
            saturated: false,
        }
    }

    /// The dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable dictionary access (interning).
    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Insert `(s, p, o, w)`. Returns true when the triple is new (not a
    /// weight update). Inserting invalidates the saturation flag.
    pub fn insert(&mut self, s: UriId, p: UriId, o: Term, weight: f64) -> bool {
        let triple = Triple::new(s, p, o);
        if let Some(&i) = self.by_triple.get(&triple) {
            let stored = &mut self.triples[i as usize];
            if weight > stored.weight {
                stored.weight = weight;
                self.saturated = false;
            }
            return false;
        }
        let idx = self.triples.len() as u32;
        self.triples.push(WeightedTriple::new(triple, weight));
        self.by_triple.insert(triple, idx);
        self.by_sp.entry((s, p)).or_default().push(idx);
        self.by_po.entry((p, o)).or_default().push(idx);
        self.by_p.entry(p).or_default().push(idx);
        self.saturated = false;
        true
    }

    /// Convenience: intern the three strings and insert with weight 1.
    pub fn insert_str(&mut self, s: &str, p: &str, o: &str) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = Term::Uri(self.dict.intern(o));
        self.insert(s, p, o, 1.0)
    }

    /// Does the store contain `(s, p, o)` (at any weight)?
    pub fn contains(&self, s: UriId, p: UriId, o: Term) -> bool {
        self.by_triple.contains_key(&Triple::new(s, p, o))
    }

    /// The weight of `(s, p, o)`, if present.
    pub fn weight(&self, s: UriId, p: UriId, o: Term) -> Option<f64> {
        self.by_triple.get(&Triple::new(s, p, o)).map(|&i| self.triples[i as usize].weight)
    }

    /// All `(o, w)` for a given subject and property.
    pub fn objects(&self, s: UriId, p: UriId) -> impl Iterator<Item = (Term, f64)> + '_ {
        self.by_sp.get(&(s, p)).into_iter().flatten().map(move |&i| {
            let t = &self.triples[i as usize];
            (t.triple.o, t.weight)
        })
    }

    /// All `(s, w)` for a given property and object.
    pub fn subjects(&self, p: UriId, o: Term) -> impl Iterator<Item = (UriId, f64)> + '_ {
        self.by_po.get(&(p, o)).into_iter().flatten().map(move |&i| {
            let t = &self.triples[i as usize];
            (t.triple.s, t.weight)
        })
    }

    /// All triples with property `p`.
    pub fn with_property(&self, p: UriId) -> impl Iterator<Item = &WeightedTriple> + '_ {
        self.by_p.get(&p).into_iter().flatten().map(move |&i| &self.triples[i as usize])
    }

    /// All triples.
    pub fn iter(&self) -> impl Iterator<Item = &WeightedTriple> + '_ {
        self.triples.iter()
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when no triple is stored.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Has [`Self::saturate`] run since the last mutation?
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Saturate the store under the RDFS entailment rules (§2.1); see
    /// [`crate::saturate`]. Returns the number of derived triples.
    pub fn saturate(&mut self) -> usize {
        let added = crate::saturate::saturate(self);
        self.saturated = true;
        added
    }

    /// `Ext(k)` over this (ideally saturated) store; see [`crate::extension`].
    pub fn extension(&self, k: UriId) -> Vec<UriId> {
        crate::extension::extension(self, k)
    }

    /// Serialize for the durable snapshot format: dictionary, triples in
    /// insertion order, and the saturation flag. The four access-path
    /// indexes are rebuilt on read by replaying the insertion order, so
    /// the encoding is independent of hash-map iteration order.
    pub fn snap_write(&self, out: &mut Vec<u8>) {
        self.dict.snap_write(out);
        s3_snap::put_usize(out, self.triples.len());
        for t in &self.triples {
            s3_snap::put_u32v(out, t.triple.s.0);
            s3_snap::put_u32v(out, t.triple.p.0);
            match t.triple.o {
                Term::Uri(u) => {
                    out.push(0);
                    s3_snap::put_u32v(out, u.0);
                }
                Term::Literal(l) => {
                    out.push(1);
                    s3_snap::put_u32v(out, l.0);
                }
            }
            s3_snap::put_f64(out, t.weight);
        }
        s3_snap::put_bool(out, self.saturated);
    }

    /// Decode a store written by [`Self::snap_write`]. Ids are validated
    /// against the dictionary and weights against `[0,1]`; never panics
    /// on malformed input.
    pub fn snap_read(r: &mut s3_snap::SnapReader<'_>) -> Result<Self, s3_snap::SnapError> {
        let dict = Dictionary::snap_read(r)?;
        let uris = dict.len() as u32;
        let n = r.seq(11)?;
        let mut store = TripleStore {
            dict,
            triples: Vec::with_capacity(n),
            by_triple: HashMap::with_capacity(n),
            by_sp: HashMap::new(),
            by_po: HashMap::new(),
            by_p: HashMap::new(),
            saturated: false,
        };
        for idx in 0..n {
            let s = UriId(r.u32v()?);
            let p = UriId(r.u32v()?);
            let o = match r.u8()? {
                0 => Term::Uri(UriId(r.u32v()?)),
                1 => Term::Literal(UriId(r.u32v()?)),
                _ => return Err(s3_snap::SnapError::Value("term discriminant")),
            };
            let weight = r.f64()?;
            if s.0 >= uris || p.0 >= uris || o.id().0 >= uris {
                return Err(s3_snap::SnapError::Value("triple id outside the dictionary"));
            }
            if !(0.0..=1.0).contains(&weight) {
                return Err(s3_snap::SnapError::Value("triple weight outside [0,1]"));
            }
            let triple = Triple::new(s, p, o);
            if store.by_triple.insert(triple, idx as u32).is_some() {
                return Err(s3_snap::SnapError::Value("duplicate triple"));
            }
            store.triples.push(WeightedTriple { triple, weight });
            store.by_sp.entry((s, p)).or_default().push(idx as u32);
            store.by_po.entry((p, o)).or_default().push(idx as u32);
            store.by_p.entry(p).or_default().push(idx as u32);
        }
        store.saturated = r.bool()?;
        Ok(store)
    }
}

impl Default for TripleStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary as voc;

    fn ids(store: &mut TripleStore, names: &[&str]) -> Vec<UriId> {
        names.iter().map(|n| store.dictionary_mut().intern(n)).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut st = TripleStore::new();
        let v = ids(&mut st, &["u1", "u0"]);
        assert!(st.insert(v[0], voc::S3_SOCIAL, Term::Uri(v[1]), 0.5));
        assert!(!st.insert(v[0], voc::S3_SOCIAL, Term::Uri(v[1]), 0.3)); // lower: kept at 0.5
        assert_eq!(st.weight(v[0], voc::S3_SOCIAL, Term::Uri(v[1])), Some(0.5));
        assert!(st.contains(v[0], voc::S3_SOCIAL, Term::Uri(v[1])));
        assert!(!st.contains(v[1], voc::S3_SOCIAL, Term::Uri(v[0])));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn duplicate_keeps_max_weight() {
        let mut st = TripleStore::new();
        let v = ids(&mut st, &["a", "b"]);
        st.insert(v[0], voc::S3_SOCIAL, Term::Uri(v[1]), 0.2);
        st.insert(v[0], voc::S3_SOCIAL, Term::Uri(v[1]), 0.9);
        assert_eq!(st.weight(v[0], voc::S3_SOCIAL, Term::Uri(v[1])), Some(0.9));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn index_consistency() {
        let mut st = TripleStore::new();
        let v = ids(&mut st, &["a", "b", "c"]);
        st.insert(v[0], voc::S3_SOCIAL, Term::Uri(v[1]), 1.0);
        st.insert(v[0], voc::S3_SOCIAL, Term::Uri(v[2]), 1.0);
        st.insert(v[1], voc::S3_SOCIAL, Term::Uri(v[2]), 1.0);
        assert_eq!(st.objects(v[0], voc::S3_SOCIAL).count(), 2);
        assert_eq!(st.subjects(voc::S3_SOCIAL, Term::Uri(v[2])).count(), 2);
        assert_eq!(st.with_property(voc::S3_SOCIAL).count(), 3);
        assert_eq!(st.with_property(voc::S3_PART_OF).count(), 0);
    }

    #[test]
    fn literals_and_uris_are_distinct_objects() {
        let mut st = TripleStore::new();
        let v = ids(&mut st, &["a", "x"]);
        st.insert(v[0], voc::S3_CONTAINS, Term::Literal(v[1]), 1.0);
        assert!(st.contains(v[0], voc::S3_CONTAINS, Term::Literal(v[1])));
        assert!(!st.contains(v[0], voc::S3_CONTAINS, Term::Uri(v[1])));
    }

    #[test]
    fn mutation_clears_saturated_flag() {
        let mut st = TripleStore::new();
        st.saturate();
        assert!(st.is_saturated());
        let v = ids(&mut st, &["a", "b"]);
        st.insert(v[0], voc::RDF_TYPE, Term::Uri(v[1]), 1.0);
        assert!(!st.is_saturated());
    }
}
