//! Triples and terms.
//!
//! Well-formed triples (paper §2.1) have a URI subject, a URI property and
//! an object from `K` = URIs ∪ stemmed literals; we model the object as a
//! [`Term`]. Weighted triples `(s, p, o, w)` carry `w ∈ [0,1]`; a weight of
//! 1 marks triples that "certainly hold" and are the only ones participating
//! in RDF entailment (§2.1, "Weighted RDF graph").

use crate::dict::UriId;
use serde::{Deserialize, Serialize};

/// Object position of a triple: a URI or a literal spelling.
///
/// Literal spellings are interned in the same [`crate::Dictionary`] as URIs
/// but are kept distinct at the type level, matching the paper's disjoint
/// `U` and `L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// A resource.
    Uri(UriId),
    /// A (stemmed) literal.
    Literal(UriId),
}

impl Term {
    /// The underlying dictionary id, whatever the kind.
    #[inline]
    pub fn id(self) -> UriId {
        match self {
            Term::Uri(u) | Term::Literal(u) => u,
        }
    }

    /// The URI, if this term is one.
    #[inline]
    pub fn as_uri(self) -> Option<UriId> {
        match self {
            Term::Uri(u) => Some(u),
            Term::Literal(_) => None,
        }
    }
}

/// An unweighted RDF triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Subject.
    pub s: UriId,
    /// Property.
    pub p: UriId,
    /// Object.
    pub o: Term,
}

impl Triple {
    /// Construct a triple.
    pub fn new(s: UriId, p: UriId, o: Term) -> Self {
        Triple { s, p, o }
    }
}

/// A weighted RDF triple `(s, p, o, w)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedTriple {
    /// The triple.
    pub triple: Triple,
    /// The weight, in `[0, 1]`; 1 means "certainly holds".
    pub weight: f64,
}

impl WeightedTriple {
    /// Construct; panics (debug) if the weight is outside `[0,1]`.
    pub fn new(triple: Triple, weight: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&weight), "triple weight {weight} outside [0,1]");
        WeightedTriple { triple, weight }
    }

    /// Does this triple participate in entailment (weight exactly 1)?
    #[inline]
    pub fn is_certain(&self) -> bool {
        self.weight == 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let u = Term::Uri(UriId(3));
        let l = Term::Literal(UriId(3));
        assert_eq!(u.id(), l.id());
        assert_eq!(u.as_uri(), Some(UriId(3)));
        assert_eq!(l.as_uri(), None);
        assert_ne!(u, l);
    }

    #[test]
    fn certain_triples() {
        let t = Triple::new(UriId(0), UriId(1), Term::Uri(UriId(2)));
        assert!(WeightedTriple::new(t, 1.0).is_certain());
        assert!(!WeightedTriple::new(t, 0.5).is_certain());
    }
}
