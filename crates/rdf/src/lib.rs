//! Weighted RDF substrate (paper §2.1).
//!
//! The S3 model encodes *everything* — social links, document structure,
//! tags, semantics — as one weighted RDF graph: triples `(s, p, o, w)` where
//! `(s, p, o)` is a regular RDF triple and `w ∈ [0,1]` its weight (triples
//! with unspecified weight have weight 1).
//!
//! This crate provides:
//!
//! * [`Dictionary`]: URI/literal interning to dense ids ([`UriId`]);
//! * [`TripleStore`]: the weighted triple store, with the lookup indexes the
//!   saturation engine and the query-time code need;
//! * [`saturate`]: RDF entailment — the paper's `⊢iRDF` immediate-entailment
//!   rules for the four RDFS constraints of Figure 2 (subclass, subproperty,
//!   domain, range), applied to weight-1 triples only and iterated to the
//!   unique fixpoint (§2.1 "Saturation");
//! * [`extension`]: `Ext(k)` of Definition 2.1 — a keyword together with
//!   everything the schema declares to be an instance (`type`), a
//!   specialization (`≺sc`) or a sub-property (`≺sp`) of it;
//! * [`vocabulary`]: the built-in RDF/RDFS/S3 namespace.
//!
//! # Example
//!
//! ```
//! use s3_rdf::{TripleStore, Term, vocabulary as voc};
//!
//! let mut store = TripleStore::new();
//! let ms = store.dictionary_mut().intern("ex:MSDegree");
//! let degree = store.dictionary_mut().intern("ex:Degree");
//! store.insert(ms, voc::RDFS_SUBCLASS_OF, Term::Uri(degree), 1.0);
//!
//! let alice_deg = store.dictionary_mut().intern("ex:aliceDegree");
//! store.insert(alice_deg, voc::RDF_TYPE, Term::Uri(ms), 1.0);
//!
//! store.saturate();
//! // RDF entailment: alice's degree is also typed by the superclass.
//! assert!(store.contains(alice_deg, voc::RDF_TYPE, Term::Uri(degree)));
//! // And Ext("Degree") contains the M.S. specialization (Definition 2.1).
//! assert!(store.extension(degree).contains(&ms));
//! ```

#![warn(missing_docs)]
pub mod dict;
pub mod extension;
pub mod pattern;
pub mod saturate;
pub mod store;
pub mod triple;
pub mod vocabulary;

pub use dict::{Dictionary, UriId};
pub use extension::ExtensionIndex;
pub use pattern::{Pattern, Rule, TermOrVar, TriplePattern, UriOrVar, Var};
pub use store::TripleStore;
pub use triple::{Term, Triple, WeightedTriple};
