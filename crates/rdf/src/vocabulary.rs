//! Built-in RDF/RDFS and S3 vocabulary (paper Figure 2 and Table 2).
//!
//! Every [`crate::Dictionary`] pre-interns these URIs at fixed positions, so
//! the constants below are valid ids in any store. The S3-namespace classes
//! and properties are the ones of Table 2, plus the paper's "inverse
//! properties" (§2.4: `s p̄ o ∈ I iff o p s ∈ I`).

use crate::dict::UriId;

/// `rdf:type` — class membership (paper: `s type o`).
pub const RDF_TYPE: UriId = UriId(0);
/// `rdfs:subClassOf` — the paper's `≺sc`.
pub const RDFS_SUBCLASS_OF: UriId = UriId(1);
/// `rdfs:subPropertyOf` — the paper's `≺sp`.
pub const RDFS_SUBPROPERTY_OF: UriId = UriId(2);
/// `rdfs:domain` — the paper's `←↩d`.
pub const RDFS_DOMAIN: UriId = UriId(3);
/// `rdfs:range` — the paper's `↪→r`.
pub const RDFS_RANGE: UriId = UriId(4);

/// `S3:user` — class of social-network users (`Ω`).
pub const S3_USER: UriId = UriId(5);
/// `S3:doc` — class of documents/fragments (`D`).
pub const S3_DOC: UriId = UriId(6);
/// `S3:relatedTo` — class generalizing tags (`T`).
pub const S3_RELATED_TO: UriId = UriId(7);

/// `S3:social` — generalization of social relationships between users.
pub const S3_SOCIAL: UriId = UriId(8);
/// `S3:postedBy` — connects documents to their posting user.
pub const S3_POSTED_BY: UriId = UriId(9);
/// `S3:commentsOn` — connects a comment document to its subject.
pub const S3_COMMENTS_ON: UriId = UriId(10);
/// `S3:partOf` — connects a fragment to its parent node.
pub const S3_PART_OF: UriId = UriId(11);
/// `S3:contains` — connects a fragment to a keyword of its content.
pub const S3_CONTAINS: UriId = UriId(12);
/// `S3:nodeName` — the node name of a fragment root.
pub const S3_NODE_NAME: UriId = UriId(13);
/// `S3:hasSubject` — the subject (document or tag) of a tag.
pub const S3_HAS_SUBJECT: UriId = UriId(14);
/// `S3:hasKeyword` — the keyword of a tag (absent for endorsements).
pub const S3_HAS_KEYWORD: UriId = UriId(15);
/// `S3:hasAuthor` — the poster of a tag.
pub const S3_HAS_AUTHOR: UriId = UriId(16);

/// Inverse of `S3:postedBy` (paper §2.4, "Inverse properties").
pub const S3_POSTED_BY_INV: UriId = UriId(17);
/// Inverse of `S3:commentsOn`.
pub const S3_COMMENTS_ON_INV: UriId = UriId(18);
/// Inverse of `S3:hasSubject`.
pub const S3_HAS_SUBJECT_INV: UriId = UriId(19);
/// Inverse of `S3:hasAuthor`.
pub const S3_HAS_AUTHOR_INV: UriId = UriId(20);

/// `foaf:name` — used by the paper's semantic enrichment of tweet text
/// (§5.1: words `w` with `u foaf:name w` in DBpedia are replaced by `u`).
pub const FOAF_NAME: UriId = UriId(21);

/// The built-in URIs, in id order. [`crate::Dictionary::new`] interns these
/// first, which pins the constants above.
pub const BUILTIN_URIS: &[&str] = &[
    "rdf:type",
    "rdfs:subClassOf",
    "rdfs:subPropertyOf",
    "rdfs:domain",
    "rdfs:range",
    "S3:user",
    "S3:doc",
    "S3:relatedTo",
    "S3:social",
    "S3:postedBy",
    "S3:commentsOn",
    "S3:partOf",
    "S3:contains",
    "S3:nodeName",
    "S3:hasSubject",
    "S3:hasKeyword",
    "S3:hasAuthor",
    "S3:postedBy⁻",
    "S3:commentsOn⁻",
    "S3:hasSubject⁻",
    "S3:hasAuthor⁻",
    "foaf:name",
];

/// Inverse property of `p`, when one is defined.
pub fn inverse_of(p: UriId) -> Option<UriId> {
    match p {
        S3_POSTED_BY => Some(S3_POSTED_BY_INV),
        S3_POSTED_BY_INV => Some(S3_POSTED_BY),
        S3_COMMENTS_ON => Some(S3_COMMENTS_ON_INV),
        S3_COMMENTS_ON_INV => Some(S3_COMMENTS_ON),
        S3_HAS_SUBJECT => Some(S3_HAS_SUBJECT_INV),
        S3_HAS_SUBJECT_INV => Some(S3_HAS_SUBJECT),
        S3_HAS_AUTHOR => Some(S3_HAS_AUTHOR_INV),
        S3_HAS_AUTHOR_INV => Some(S3_HAS_AUTHOR),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_list_positions() {
        assert_eq!(BUILTIN_URIS[RDF_TYPE.index()], "rdf:type");
        assert_eq!(BUILTIN_URIS[RDFS_RANGE.index()], "rdfs:range");
        assert_eq!(BUILTIN_URIS[S3_HAS_AUTHOR.index()], "S3:hasAuthor");
        assert_eq!(BUILTIN_URIS[FOAF_NAME.index()], "foaf:name");
        assert_eq!(BUILTIN_URIS.len(), FOAF_NAME.index() + 1);
    }

    #[test]
    fn inverses_are_involutive() {
        for p in [S3_POSTED_BY, S3_COMMENTS_ON, S3_HAS_SUBJECT, S3_HAS_AUTHOR] {
            let inv = inverse_of(p).unwrap();
            assert_eq!(inverse_of(inv), Some(p));
        }
        assert_eq!(inverse_of(S3_PART_OF), None);
        assert_eq!(inverse_of(RDF_TYPE), None);
    }
}
