//! Keyword extension `Ext(k)` (paper Definition 2.1).
//!
//! Given a saturated instance `I` and a keyword `k`:
//!
//! * `k ∈ Ext(k)`;
//! * for any triple `b type k`, `b ≺sc k` or `b ≺sp k` in `I`,
//!   `b ∈ Ext(k)`.
//!
//! Because the store is saturated, the one-step lookup below already sees
//! the transitive closure (`M.S. ≺sc Masters ≺sc Degree` materializes
//! `M.S. ≺sc Degree`), so `Ext` never generalizes a keyword — every member
//! is an instance or specialization of `k`, as the paper requires.

use crate::store::TripleStore;
use crate::triple::Term;
use crate::vocabulary as voc;
use crate::UriId;
use std::collections::HashMap;

/// Compute `Ext(k)` for the URI `k`. The result starts with `k` itself and
/// is deduplicated; order is deterministic (k first, then by id).
pub fn extension(store: &TripleStore, k: UriId) -> Vec<UriId> {
    let mut out = vec![k];
    let mut seen: Vec<UriId> = Vec::new();
    for p in [voc::RDF_TYPE, voc::RDFS_SUBCLASS_OF, voc::RDFS_SUBPROPERTY_OF] {
        for (b, w) in store.subjects(p, Term::Uri(k)) {
            if w == 1.0 && b != k {
                seen.push(b);
            }
        }
    }
    seen.sort_unstable();
    seen.dedup();
    out.extend(seen);
    out
}

/// A cache of keyword extensions, for query-time reuse (the paper reports
/// that extensions grow workload queries by ~50%, so they are computed for
/// every query keyword).
#[derive(Debug, Default)]
pub struct ExtensionIndex {
    cache: HashMap<UriId, Vec<UriId>>,
}

impl ExtensionIndex {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// `Ext(k)`, computed on first use.
    pub fn get<'a>(&'a mut self, store: &TripleStore, k: UriId) -> &'a [UriId] {
        self.cache.entry(k).or_insert_with(|| extension(store, k))
    }

    /// Number of cached extensions.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intern(st: &mut TripleStore, s: &str) -> UriId {
        st.dictionary_mut().intern(s)
    }

    #[test]
    fn extension_contains_self() {
        let st = TripleStore::new();
        let k = voc::S3_USER;
        assert_eq!(extension(&st, k), vec![k]);
    }

    #[test]
    fn paper_example_ms_degree() {
        // "given the keyword degree, and assuming M.S. ≺sc degree holds in
        // I, we have M.S. ∈ Ext(degree)" (§2.1).
        let mut st = TripleStore::new();
        let ms = intern(&mut st, "M.S.");
        let degree = intern(&mut st, "degree");
        st.insert(ms, voc::RDFS_SUBCLASS_OF, Term::Uri(degree), 1.0);
        st.saturate();
        let ext = extension(&st, degree);
        assert!(ext.contains(&ms));
        assert_eq!(ext[0], degree);
    }

    #[test]
    fn extension_sees_transitive_specializations_after_saturation() {
        let mut st = TripleStore::new();
        let a = intern(&mut st, "EDBTDegree");
        let b = intern(&mut st, "M.S.");
        let c = intern(&mut st, "degree");
        st.insert(a, voc::RDFS_SUBCLASS_OF, Term::Uri(b), 1.0);
        st.insert(b, voc::RDFS_SUBCLASS_OF, Term::Uri(c), 1.0);
        st.saturate();
        let ext = extension(&st, c);
        assert!(ext.contains(&a), "transitive subclass must be in Ext");
        assert!(ext.contains(&b));
    }

    #[test]
    fn instances_are_in_extension() {
        let mut st = TripleStore::new();
        let ualberta = intern(&mut st, "UAlberta");
        let university = intern(&mut st, "University");
        st.insert(ualberta, voc::RDF_TYPE, Term::Uri(university), 1.0);
        st.saturate();
        assert!(extension(&st, university).contains(&ualberta));
    }

    #[test]
    fn subproperties_are_in_extension() {
        let mut st = TripleStore::new();
        let friend = intern(&mut st, "friend");
        st.insert(friend, voc::RDFS_SUBPROPERTY_OF, Term::Uri(voc::S3_SOCIAL), 1.0);
        st.saturate();
        assert!(extension(&st, voc::S3_SOCIAL).contains(&friend));
    }

    #[test]
    fn extension_never_generalizes() {
        // `degree` must NOT appear in Ext(M.S.).
        let mut st = TripleStore::new();
        let ms = intern(&mut st, "M.S.");
        let degree = intern(&mut st, "degree");
        st.insert(ms, voc::RDFS_SUBCLASS_OF, Term::Uri(degree), 1.0);
        st.saturate();
        assert_eq!(extension(&st, ms), vec![ms]);
    }

    #[test]
    fn uncertain_schema_does_not_extend() {
        let mut st = TripleStore::new();
        let ms = intern(&mut st, "M.S.");
        let degree = intern(&mut st, "degree");
        st.insert(ms, voc::RDFS_SUBCLASS_OF, Term::Uri(degree), 0.9);
        st.saturate();
        assert_eq!(extension(&st, degree), vec![degree]);
    }

    #[test]
    fn index_caches() {
        let mut st = TripleStore::new();
        let ms = intern(&mut st, "M.S.");
        let degree = intern(&mut st, "degree");
        st.insert(ms, voc::RDFS_SUBCLASS_OF, Term::Uri(degree), 1.0);
        st.saturate();
        let mut idx = ExtensionIndex::new();
        assert_eq!(idx.get(&st, degree).len(), 2);
        assert_eq!(idx.get(&st, degree).len(), 2);
        assert_eq!(idx.len(), 1);
    }
}
