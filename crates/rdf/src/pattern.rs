//! Basic graph pattern (BGP) matching over a [`crate::TripleStore`].
//!
//! The paper relies on this twice:
//!
//! * §2.2 "Extensibility": *"two people \[who\] have worked the same year for
//!   a company of less than 10 employees … must have worked together. This
//!   is easily achieved with a query that retrieves all such user pairs (in
//!   SPARQL …), and builds a `u workedWith u'` triple for each pair"* —
//!   application-defined rules derive new social edges from the RDF layer;
//! * §6: Facebook GraphSearch "is a restricted form of SPARQL query one
//!   could ask over an S3 instance".
//!
//! This module implements conjunctive triple patterns with variables —
//! the SPARQL fragment those use cases need — evaluated by iterative
//! binding extension with index-backed lookups, most-selective-first.

use crate::dict::UriId;
use crate::store::TripleStore;
use crate::triple::Term;
use std::collections::HashMap;

/// A query variable (by position in the pattern's variable table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u16);

/// Subject/property position: a constant URI or a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UriOrVar {
    /// Fixed URI.
    Uri(UriId),
    /// Variable.
    Var(Var),
}

/// Object position: a constant term or a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermOrVar {
    /// Fixed term.
    Term(Term),
    /// Variable.
    Var(Var),
}

/// One triple pattern `s p o` with optional variables.
#[derive(Debug, Clone, Copy)]
pub struct TriplePattern {
    /// Subject.
    pub s: UriOrVar,
    /// Property (predicate).
    pub p: UriOrVar,
    /// Object.
    pub o: TermOrVar,
}

/// A conjunctive pattern (BGP) plus its variable count.
#[derive(Debug, Clone, Default)]
pub struct Pattern {
    patterns: Vec<TriplePattern>,
    num_vars: u16,
    names: Vec<String>,
}

impl Pattern {
    /// Empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a fresh variable with a debug name.
    pub fn var(&mut self, name: &str) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        self.names.push(name.to_string());
        v
    }

    /// Add a triple pattern.
    pub fn triple(&mut self, s: UriOrVar, p: UriOrVar, o: TermOrVar) -> &mut Self {
        self.patterns.push(TriplePattern { s, p, o });
        self
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Variable name (for diagnostics).
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.0 as usize]
    }

    /// Evaluate against a store: every total assignment of the declared
    /// variables satisfying all patterns (on certain *and* weighted triples
    /// alike — pattern matching is weight-agnostic; weights gate only
    /// entailment).
    pub fn solutions(&self, store: &TripleStore) -> Vec<Vec<Term>> {
        let mut results = Vec::new();
        let mut binding: Vec<Option<Term>> = vec![None; self.num_vars as usize];
        // Order patterns most-selective-first: constants count double.
        let mut order: Vec<usize> = (0..self.patterns.len()).collect();
        let selectivity = |tp: &TriplePattern| -> i32 {
            let mut s = 0;
            if matches!(tp.s, UriOrVar::Uri(_)) {
                s += 2;
            }
            if matches!(tp.p, UriOrVar::Uri(_)) {
                s += 2;
            }
            if matches!(tp.o, TermOrVar::Term(_)) {
                s += 2;
            }
            -s
        };
        order.sort_by_key(|&i| selectivity(&self.patterns[i]));
        self.extend(store, &order, 0, &mut binding, &mut results);
        results
    }

    fn extend(
        &self,
        store: &TripleStore,
        order: &[usize],
        depth: usize,
        binding: &mut Vec<Option<Term>>,
        results: &mut Vec<Vec<Term>>,
    ) {
        if depth == order.len() {
            if binding.iter().all(Option::is_some) {
                results.push(binding.iter().map(|b| b.expect("checked")).collect());
            }
            return;
        }
        let tp = &self.patterns[order[depth]];
        let s_bound = self.resolve_uri(tp.s, binding);
        let p_bound = self.resolve_uri(tp.p, binding);
        let o_bound = self.resolve_term(tp.o, binding);

        // Enumerate candidate triples through the cheapest available index.
        let candidates: Vec<(UriId, UriId, Term)> = match (s_bound, p_bound, o_bound) {
            (Some(s), Some(p), Some(o)) => {
                if store.contains(s, p, o) {
                    vec![(s, p, o)]
                } else {
                    vec![]
                }
            }
            (Some(s), Some(p), None) => store.objects(s, p).map(|(o, _)| (s, p, o)).collect(),
            (None, Some(p), Some(o)) => store.subjects(p, o).map(|(s, _)| (s, p, o)).collect(),
            (None, Some(p), None) => {
                store.with_property(p).map(|t| (t.triple.s, t.triple.p, t.triple.o)).collect()
            }
            // Property unbound: full scan with post-filter.
            _ => store
                .iter()
                .map(|t| (t.triple.s, t.triple.p, t.triple.o))
                .filter(|&(s, _, o)| {
                    s_bound.is_none_or(|sb| sb == s) && o_bound.is_none_or(|ob| ob == o)
                })
                .collect(),
        };

        for (s, p, o) in candidates {
            let mut touched: Vec<Var> = Vec::new();
            if self.bind_uri(tp.s, s, binding, &mut touched)
                && self.bind_uri(tp.p, p, binding, &mut touched)
                && self.bind_term(tp.o, o, binding, &mut touched)
            {
                self.extend(store, order, depth + 1, binding, results);
            }
            for v in touched {
                binding[v.0 as usize] = None;
            }
        }
    }

    fn resolve_uri(&self, x: UriOrVar, binding: &[Option<Term>]) -> Option<UriId> {
        match x {
            UriOrVar::Uri(u) => Some(u),
            UriOrVar::Var(v) => binding[v.0 as usize].and_then(Term::as_uri),
        }
    }

    fn resolve_term(&self, x: TermOrVar, binding: &[Option<Term>]) -> Option<Term> {
        match x {
            TermOrVar::Term(t) => Some(t),
            TermOrVar::Var(v) => binding[v.0 as usize],
        }
    }

    fn bind_uri(
        &self,
        x: UriOrVar,
        value: UriId,
        binding: &mut [Option<Term>],
        touched: &mut Vec<Var>,
    ) -> bool {
        match x {
            UriOrVar::Uri(u) => u == value,
            UriOrVar::Var(v) => match binding[v.0 as usize] {
                Some(prev) => prev == Term::Uri(value),
                None => {
                    binding[v.0 as usize] = Some(Term::Uri(value));
                    touched.push(v);
                    true
                }
            },
        }
    }

    fn bind_term(
        &self,
        x: TermOrVar,
        value: Term,
        binding: &mut [Option<Term>],
        touched: &mut Vec<Var>,
    ) -> bool {
        match x {
            TermOrVar::Term(t) => t == value,
            TermOrVar::Var(v) => match binding[v.0 as usize] {
                Some(prev) => prev == value,
                None => {
                    binding[v.0 as usize] = Some(value);
                    touched.push(v);
                    true
                }
            },
        }
    }
}

/// A derivation rule (§2.2 extensibility): when the pattern matches, emit a
/// new triple built from the head template, e.g.
/// `?a ex:workedAt ?c . ?b ex:workedAt ?c . ?c type ex:SmallCompany
///  ⇒ ?a ex:workedWith ?b`.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Body pattern.
    pub body: Pattern,
    /// Head template: subject var, property URI, object var.
    pub head: (Var, UriId, Var),
}

impl Rule {
    /// Apply to a store; returns the number of *new* triples added (all
    /// weight 1). Saturate afterwards if entailment should see them.
    pub fn apply(&self, store: &mut TripleStore) -> usize {
        let solutions = self.body.solutions(store);
        let mut added = 0;
        let (sv, p, ov) = self.head;
        let mut emitted: HashMap<(Term, Term), ()> = HashMap::new();
        for sol in solutions {
            let s = sol[sv.0 as usize];
            let o = sol[ov.0 as usize];
            if s == o || emitted.contains_key(&(s, o)) {
                continue;
            }
            emitted.insert((s, o), ());
            if let Some(su) = s.as_uri() {
                if store.insert(su, p, o, 1.0) {
                    added += 1;
                }
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary as voc;

    fn store_with_work_facts() -> (TripleStore, UriId, UriId) {
        let mut st = TripleStore::new();
        let worked_at = st.dictionary_mut().intern("ex:workedAt");
        let small = st.dictionary_mut().intern("ex:SmallCompany");
        for (person, company) in
            [("ex:ana", "ex:acme"), ("ex:bob", "ex:acme"), ("ex:cyd", "ex:mega")]
        {
            let p = st.dictionary_mut().intern(person);
            let c = st.dictionary_mut().intern(company);
            st.insert(p, worked_at, Term::Uri(c), 1.0);
        }
        let acme = st.dictionary_mut().intern("ex:acme");
        st.insert(acme, voc::RDF_TYPE, Term::Uri(small), 1.0);
        (st, worked_at, small)
    }

    #[test]
    fn single_pattern_enumeration() {
        let (st, worked_at, _) = store_with_work_facts();
        let mut pat = Pattern::new();
        let who = pat.var("who");
        let all = pat.var("where");
        pat.triple(UriOrVar::Var(who), UriOrVar::Uri(worked_at), TermOrVar::Var(all));
        assert_eq!(pat.solutions(&st).len(), 3);
    }

    #[test]
    fn join_on_shared_variable() {
        let (st, worked_at, small) = store_with_work_facts();
        let mut pat = Pattern::new();
        let a = pat.var("a");
        let b = pat.var("b");
        let c = pat.var("c");
        pat.triple(UriOrVar::Var(a), UriOrVar::Uri(worked_at), TermOrVar::Var(c));
        pat.triple(UriOrVar::Var(b), UriOrVar::Uri(worked_at), TermOrVar::Var(c));
        pat.triple(
            UriOrVar::Var(c),
            UriOrVar::Uri(voc::RDF_TYPE),
            TermOrVar::Term(Term::Uri(small)),
        );
        let sols = pat.solutions(&st);
        // (ana,ana), (ana,bob), (bob,ana), (bob,bob) — cyd's company is big.
        assert_eq!(sols.len(), 4);
        let ana = st.dictionary().get("ex:ana").unwrap();
        let cyd = st.dictionary().get("ex:cyd").unwrap();
        assert!(sols.iter().any(|s| s[0] == Term::Uri(ana)));
        assert!(!sols.iter().any(|s| s[0] == Term::Uri(cyd)));
    }

    #[test]
    fn paper_worked_with_rule() {
        // §2.2: derive workedWith ≺sp S3:social edges from RDF facts.
        let (mut st, worked_at, small) = store_with_work_facts();
        let worked_with = st.dictionary_mut().intern("ex:workedWith");
        st.insert(worked_with, voc::RDFS_SUBPROPERTY_OF, Term::Uri(voc::S3_SOCIAL), 1.0);

        let mut body = Pattern::new();
        let a = body.var("a");
        let b = body.var("b");
        let c = body.var("c");
        body.triple(UriOrVar::Var(a), UriOrVar::Uri(worked_at), TermOrVar::Var(c));
        body.triple(UriOrVar::Var(b), UriOrVar::Uri(worked_at), TermOrVar::Var(c));
        body.triple(
            UriOrVar::Var(c),
            UriOrVar::Uri(voc::RDF_TYPE),
            TermOrVar::Term(Term::Uri(small)),
        );
        let rule = Rule { body, head: (a, worked_with, b) };
        let added = rule.apply(&mut st);
        assert_eq!(added, 2, "ana↔bob, both directions, self-pairs skipped");

        // After saturation the derived edges are S3:social (≺sp lifting).
        st.saturate();
        let ana = st.dictionary().get("ex:ana").unwrap();
        let bob = st.dictionary().get("ex:bob").unwrap();
        assert!(st.contains(ana, voc::S3_SOCIAL, Term::Uri(bob)));
        assert!(st.contains(bob, voc::S3_SOCIAL, Term::Uri(ana)));
    }

    #[test]
    fn rule_application_is_idempotent() {
        let (mut st, worked_at, small) = store_with_work_facts();
        let ww = st.dictionary_mut().intern("ex:ww");
        let mut body = Pattern::new();
        let a = body.var("a");
        let b = body.var("b");
        let c = body.var("c");
        body.triple(UriOrVar::Var(a), UriOrVar::Uri(worked_at), TermOrVar::Var(c));
        body.triple(UriOrVar::Var(b), UriOrVar::Uri(worked_at), TermOrVar::Var(c));
        body.triple(
            UriOrVar::Var(c),
            UriOrVar::Uri(voc::RDF_TYPE),
            TermOrVar::Term(Term::Uri(small)),
        );
        let rule = Rule { body, head: (a, ww, b) };
        assert_eq!(rule.apply(&mut st), 2);
        assert_eq!(rule.apply(&mut st), 0);
    }

    #[test]
    fn constant_only_pattern() {
        let (st, worked_at, _) = store_with_work_facts();
        let ana = st.dictionary().get("ex:ana").unwrap();
        let acme = st.dictionary().get("ex:acme").unwrap();
        let mut pat = Pattern::new();
        pat.triple(UriOrVar::Uri(ana), UriOrVar::Uri(worked_at), TermOrVar::Term(Term::Uri(acme)));
        assert_eq!(pat.solutions(&st).len(), 1);
        let mut bad = Pattern::new();
        let mega = st.dictionary().get("ex:mega").unwrap();
        bad.triple(UriOrVar::Uri(ana), UriOrVar::Uri(worked_at), TermOrVar::Term(Term::Uri(mega)));
        assert!(bad.solutions(&st).is_empty());
    }

    #[test]
    fn unbound_property_scans() {
        let (st, _, _) = store_with_work_facts();
        let ana = st.dictionary().get("ex:ana").unwrap();
        let mut pat = Pattern::new();
        let p = pat.var("p");
        let o = pat.var("o");
        pat.triple(UriOrVar::Uri(ana), UriOrVar::Var(p), TermOrVar::Var(o));
        assert_eq!(pat.solutions(&st).len(), 1);
    }
}
