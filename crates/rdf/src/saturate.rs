//! RDF entailment / saturation (paper §2.1).
//!
//! The paper uses the four RDFS constraint kinds of Figure 2 and defines the
//! saturation of a *weighted* graph as "the saturation derived only from its
//! triples whose weight is 1": an entailment rule `a, b ⊢iRDF c` fires only
//! when both premises have weight 1, and derives `c` with weight 1.
//!
//! The implemented immediate-entailment rules are the standard RDFS ones
//! over the constraints the paper uses:
//!
//! | id | premises | conclusion |
//! |----|----------|------------|
//! | SC-T | `a ≺sc b`, `b ≺sc c` | `a ≺sc c` |
//! | SP-T | `p ≺sp q`, `q ≺sp r` | `p ≺sp r` |
//! | TYPE | `s type a`, `a ≺sc b` | `s type b` |
//! | PROP | `s p o`, `p ≺sp q` | `s q o` |
//! | DOM | `s p o`, `p ←↩d c` | `s type c` |
//! | RNG | `s p o`, `p ↪→r c` | `o type c` (when `o` is a URI) |
//!
//! Saturation is computed by a semi-naive fixpoint (only newly derived
//! triples are re-joined each round), which reaches the unique finite
//! fixpoint the standard guarantees.

use crate::store::TripleStore;
use crate::triple::{Term, Triple};
use crate::vocabulary as voc;
use std::collections::HashSet;

/// Saturate `store` in place; returns the number of derived triples.
pub fn saturate(store: &mut TripleStore) -> usize {
    // Work on snapshots of the rule-relevant certain triples; the instance
    // triples (s p o) may be numerous, so joins are driven from the schema
    // side wherever possible.
    let mut derived = 0usize;

    // `delta`: triples added in the previous round (initially: everything
    // certain). Stored as plain Triples — all participating triples have
    // weight 1 by construction.
    let mut delta: Vec<Triple> =
        store.iter().filter(|t| t.is_certain()).map(|t| t.triple).collect();
    let mut seen: HashSet<Triple> = delta.iter().copied().collect();

    while !delta.is_empty() {
        let mut new_triples: Vec<Triple> = Vec::new();
        {
            let mut emit = |t: Triple, new_triples: &mut Vec<Triple>| {
                // A derivation may upgrade a lower-weight stored triple to
                // certainty, in which case it must (re-)join next round.
                let already_certain = store.weight(t.s, t.p, t.o).is_some_and(|w| w == 1.0);
                if !seen.contains(&t) && !already_certain {
                    seen.insert(t);
                    new_triples.push(t);
                }
            };
            for t in &delta {
                // Rules where `t` is the "left" premise.
                match t.p {
                    p if p == voc::RDFS_SUBCLASS_OF => {
                        // SC-T forward: t = a ≺sc b, join b ≺sc c.
                        if let Some(b) = t.o.as_uri() {
                            for (c, w) in collect_objects(store, b, voc::RDFS_SUBCLASS_OF) {
                                if w == 1.0 {
                                    emit(
                                        Triple::new(t.s, voc::RDFS_SUBCLASS_OF, c),
                                        &mut new_triples,
                                    );
                                }
                            }
                            // SC-T backward: join x ≺sc a with t = a ≺sc b.
                            for (x, w) in
                                collect_subjects(store, voc::RDFS_SUBCLASS_OF, Term::Uri(t.s))
                            {
                                if w == 1.0 {
                                    emit(
                                        Triple::new(x, voc::RDFS_SUBCLASS_OF, t.o),
                                        &mut new_triples,
                                    );
                                }
                            }
                            // TYPE backward: join s type a with t = a ≺sc b.
                            for (s, w) in collect_subjects(store, voc::RDF_TYPE, Term::Uri(t.s)) {
                                if w == 1.0 {
                                    emit(Triple::new(s, voc::RDF_TYPE, t.o), &mut new_triples);
                                }
                            }
                        }
                    }
                    p if p == voc::RDFS_SUBPROPERTY_OF => {
                        if let Some(q) = t.o.as_uri() {
                            // SP-T forward and backward.
                            for (r, w) in collect_objects(store, q, voc::RDFS_SUBPROPERTY_OF) {
                                if w == 1.0 {
                                    emit(
                                        Triple::new(t.s, voc::RDFS_SUBPROPERTY_OF, r),
                                        &mut new_triples,
                                    );
                                }
                            }
                            for (x, w) in
                                collect_subjects(store, voc::RDFS_SUBPROPERTY_OF, Term::Uri(t.s))
                            {
                                if w == 1.0 {
                                    emit(
                                        Triple::new(x, voc::RDFS_SUBPROPERTY_OF, t.o),
                                        &mut new_triples,
                                    );
                                }
                            }
                            // PROP backward: all certain (s, t.s, o) get (s, q, o).
                            for prem in collect_with_property(store, t.s) {
                                emit(Triple::new(prem.s, q, prem.o), &mut new_triples);
                            }
                        }
                    }
                    p if p == voc::RDF_TYPE => {
                        // TYPE forward: t = s type a, join a ≺sc b.
                        if let Some(a) = t.o.as_uri() {
                            for (b, w) in collect_objects(store, a, voc::RDFS_SUBCLASS_OF) {
                                if w == 1.0 {
                                    emit(Triple::new(t.s, voc::RDF_TYPE, b), &mut new_triples);
                                }
                            }
                        }
                    }
                    p if p == voc::RDFS_DOMAIN => {
                        // DOM backward: t = p ←↩d c; every certain (s, p, o)
                        // yields s type c.
                        if let Some(c) = t.o.as_uri() {
                            for prem in collect_with_property(store, t.s) {
                                emit(
                                    Triple::new(prem.s, voc::RDF_TYPE, Term::Uri(c)),
                                    &mut new_triples,
                                );
                            }
                        }
                    }
                    p if p == voc::RDFS_RANGE => {
                        if let Some(c) = t.o.as_uri() {
                            for prem in collect_with_property(store, t.s) {
                                if let Some(o) = prem.o.as_uri() {
                                    emit(
                                        Triple::new(o, voc::RDF_TYPE, Term::Uri(c)),
                                        &mut new_triples,
                                    );
                                }
                            }
                        }
                    }
                    _ => {}
                }
                // Rules where `t = (s p o)` is the instance-side premise:
                // PROP, DOM, RNG driven from the schema of t.p.
                for (q, w) in collect_objects(store, t.p, voc::RDFS_SUBPROPERTY_OF) {
                    if w == 1.0 {
                        if let Some(q) = q.as_uri() {
                            emit(Triple::new(t.s, q, t.o), &mut new_triples);
                        }
                    }
                }
                for (c, w) in collect_objects(store, t.p, voc::RDFS_DOMAIN) {
                    if w == 1.0 {
                        if let Some(c) = c.as_uri() {
                            emit(Triple::new(t.s, voc::RDF_TYPE, Term::Uri(c)), &mut new_triples);
                        }
                    }
                }
                for (c, w) in collect_objects(store, t.p, voc::RDFS_RANGE) {
                    if w == 1.0 {
                        if let (Some(c), Some(o)) = (c.as_uri(), t.o.as_uri()) {
                            emit(Triple::new(o, voc::RDF_TYPE, Term::Uri(c)), &mut new_triples);
                        }
                    }
                }
            }
        }
        for t in &new_triples {
            store.insert(t.s, t.p, t.o, 1.0);
            derived += 1;
        }
        delta = new_triples;
    }
    derived
}

/// Certain-object snapshot (avoids borrowing `store` across mutation).
fn collect_objects(store: &TripleStore, s: crate::UriId, p: crate::UriId) -> Vec<(Term, f64)> {
    store.objects(s, p).collect()
}

fn collect_subjects(store: &TripleStore, p: crate::UriId, o: Term) -> Vec<(crate::UriId, f64)> {
    store.subjects(p, o).collect()
}

fn collect_with_property(store: &TripleStore, p: crate::UriId) -> Vec<Triple> {
    store.with_property(p).filter(|t| t.is_certain()).map(|t| t.triple).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary as voc;
    use crate::UriId;

    fn intern(st: &mut TripleStore, s: &str) -> UriId {
        st.dictionary_mut().intern(s)
    }

    #[test]
    fn subclass_transitivity() {
        let mut st = TripleStore::new();
        let (a, b, c) = (intern(&mut st, "A"), intern(&mut st, "B"), intern(&mut st, "C"));
        st.insert(a, voc::RDFS_SUBCLASS_OF, Term::Uri(b), 1.0);
        st.insert(b, voc::RDFS_SUBCLASS_OF, Term::Uri(c), 1.0);
        st.saturate();
        assert!(st.contains(a, voc::RDFS_SUBCLASS_OF, Term::Uri(c)));
    }

    #[test]
    fn type_propagates_up_subclass_chain() {
        let mut st = TripleStore::new();
        let names = ["x", "MS", "Degree", "Qualification"];
        let v: Vec<UriId> = names.iter().map(|n| intern(&mut st, n)).collect();
        st.insert(v[0], voc::RDF_TYPE, Term::Uri(v[1]), 1.0);
        st.insert(v[1], voc::RDFS_SUBCLASS_OF, Term::Uri(v[2]), 1.0);
        st.insert(v[2], voc::RDFS_SUBCLASS_OF, Term::Uri(v[3]), 1.0);
        st.saturate();
        assert!(st.contains(v[0], voc::RDF_TYPE, Term::Uri(v[2])));
        assert!(st.contains(v[0], voc::RDF_TYPE, Term::Uri(v[3])));
    }

    #[test]
    fn subproperty_lifts_assertions() {
        // Paper §2.2 extensibility example: workedWith ≺sp S3:social.
        let mut st = TripleStore::new();
        let (u, v_) = (intern(&mut st, "u"), intern(&mut st, "v"));
        let worked = intern(&mut st, "workedWith");
        st.insert(worked, voc::RDFS_SUBPROPERTY_OF, Term::Uri(voc::S3_SOCIAL), 1.0);
        st.insert(u, worked, Term::Uri(v_), 1.0);
        st.saturate();
        assert!(st.contains(u, voc::S3_SOCIAL, Term::Uri(v_)));
    }

    #[test]
    fn domain_and_range_typing() {
        // Paper §2.1 example: hasFriend ←↩d Person, u1 hasFriend u0 ⊢
        // u1 type Person; hasFriend ↪→r Person ⊢ u0 type Person.
        let mut st = TripleStore::new();
        let (u1, u0) = (intern(&mut st, "u1"), intern(&mut st, "u0"));
        let has_friend = intern(&mut st, "hasFriend");
        let person = intern(&mut st, "Person");
        st.insert(has_friend, voc::RDFS_DOMAIN, Term::Uri(person), 1.0);
        st.insert(has_friend, voc::RDFS_RANGE, Term::Uri(person), 1.0);
        st.insert(u1, has_friend, Term::Uri(u0), 1.0);
        st.saturate();
        assert!(st.contains(u1, voc::RDF_TYPE, Term::Uri(person)));
        assert!(st.contains(u0, voc::RDF_TYPE, Term::Uri(person)));
    }

    #[test]
    fn weighted_triples_do_not_entail() {
        // §2.1: rules apply only when both premises have weight 1.
        let mut st = TripleStore::new();
        let (a, b, c) = (intern(&mut st, "A"), intern(&mut st, "B"), intern(&mut st, "C"));
        st.insert(a, voc::RDFS_SUBCLASS_OF, Term::Uri(b), 0.5);
        st.insert(b, voc::RDFS_SUBCLASS_OF, Term::Uri(c), 1.0);
        let added = st.saturate();
        assert_eq!(added, 0);
        assert!(!st.contains(a, voc::RDFS_SUBCLASS_OF, Term::Uri(c)));
    }

    #[test]
    fn chained_rules_compose() {
        // sp lifting then domain typing: p ≺sp q, q ←↩d C, s p o ⊢ s type C.
        let mut st = TripleStore::new();
        let (s, o, p, q, c) = (
            intern(&mut st, "s"),
            intern(&mut st, "o"),
            intern(&mut st, "p"),
            intern(&mut st, "q"),
            intern(&mut st, "C"),
        );
        st.insert(p, voc::RDFS_SUBPROPERTY_OF, Term::Uri(q), 1.0);
        st.insert(q, voc::RDFS_DOMAIN, Term::Uri(c), 1.0);
        st.insert(s, p, Term::Uri(o), 1.0);
        st.saturate();
        assert!(st.contains(s, q, Term::Uri(o)));
        assert!(st.contains(s, voc::RDF_TYPE, Term::Uri(c)));
    }

    #[test]
    fn saturation_is_idempotent() {
        let mut st = TripleStore::new();
        for i in 0..10 {
            let a = intern(&mut st, &format!("c{i}"));
            let b = intern(&mut st, &format!("c{}", i + 1));
            st.insert(a, voc::RDFS_SUBCLASS_OF, Term::Uri(b), 1.0);
        }
        let first = st.saturate();
        assert!(first > 0);
        let second = st.saturate();
        assert_eq!(second, 0);
    }

    #[test]
    fn range_rule_skips_literal_objects() {
        let mut st = TripleStore::new();
        let (s, p, c) = (intern(&mut st, "s"), intern(&mut st, "p"), intern(&mut st, "C"));
        let lit = intern(&mut st, "\"literal\"");
        st.insert(p, voc::RDFS_RANGE, Term::Uri(c), 1.0);
        st.insert(s, p, Term::Literal(lit), 1.0);
        st.saturate();
        // No `lit type C` triple: literals cannot be typed.
        assert!(!st.contains(lit, voc::RDF_TYPE, Term::Uri(c)));
    }

    #[test]
    fn cyclic_subclass_terminates() {
        let mut st = TripleStore::new();
        let (a, b) = (intern(&mut st, "A"), intern(&mut st, "B"));
        st.insert(a, voc::RDFS_SUBCLASS_OF, Term::Uri(b), 1.0);
        st.insert(b, voc::RDFS_SUBCLASS_OF, Term::Uri(a), 1.0);
        st.saturate(); // must not loop forever
        assert!(st.contains(a, voc::RDFS_SUBCLASS_OF, Term::Uri(a)));
    }
}
