//! Property tests for the TopkS baseline: the incremental NRA search must
//! agree with an exhaustive scoring pass.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::UserId;
use s3_text::KeywordId;
use s3_topks::{ItemId, TopkSConfig, TopkSEngine, UitInstance};

/// Random UIT instance.
fn random_uit(seed: u64) -> (UitInstance, usize, Vec<KeywordId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let users = rng.gen_range(2..8usize);
    let items = rng.gen_range(1..8usize);
    let tags: Vec<KeywordId> = (0..rng.gen_range(1..5u32)).map(KeywordId).collect();
    let mut uit = UitInstance::new(users, items);
    for _ in 0..rng.gen_range(0..users * 3) {
        let a = rng.gen_range(0..users);
        let b = rng.gen_range(0..users);
        if a != b {
            uit.add_user_link(UserId(a as u32), UserId(b as u32), rng.gen_range(0.1..=1.0));
        }
    }
    for _ in 0..rng.gen_range(1..users * items + 1) {
        uit.add_triple(
            UserId(rng.gen_range(0..users) as u32),
            ItemId(rng.gen_range(0..items) as u32),
            tags[rng.gen_range(0..tags.len())],
        );
    }
    (uit, users, tags)
}

/// Exhaustive σ (best-path, max product) by Bellman-Ford-style relaxation.
fn exact_sigma(uit: &UitInstance, seeker: UserId) -> Vec<f64> {
    let n = uit.num_users();
    let mut sigma = vec![0.0; n];
    sigma[seeker.index()] = 1.0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if sigma[u] == 0.0 {
                continue;
            }
            for &(v, w) in uit.links(UserId(u as u32)) {
                let cand = sigma[u] * w;
                if cand > sigma[v.index()] + 1e-15 {
                    sigma[v.index()] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    sigma
}

/// Exhaustive item scores.
fn exact_scores(
    uit: &UitInstance,
    seeker: UserId,
    query: &[KeywordId],
    alpha: f64,
) -> Vec<(ItemId, f64)> {
    let sigma = exact_sigma(uit, seeker);
    let mut out = Vec::new();
    for i in 0..uit.num_items() {
        let item = ItemId(i as u32);
        let mut score = 0.0;
        let mut any = false;
        for &t in query {
            let taggers = uit.taggers(item, t);
            if !taggers.is_empty() {
                any = true;
            }
            score += alpha * taggers.iter().map(|u| sigma[u.index()]).sum::<f64>()
                + (1.0 - alpha) * uit.content_score(item, t);
        }
        if any {
            out.push((item, score));
        }
    }
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The NRA search returns the same top-k scores as exhaustive scoring.
    #[test]
    fn topks_matches_exhaustive(seed in 0u64..5000, alpha in 0.0f64..=1.0, k in 1usize..5) {
        let (uit, users, tags) = random_uit(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70);
        let seeker = UserId(rng.gen_range(0..users) as u32);
        let query: Vec<KeywordId> =
            (0..rng.gen_range(1..=tags.len())).map(|i| tags[i]).collect();
        let engine = TopkSEngine::new(&uit, TopkSConfig { alpha, epsilon: 1e-12 });
        let res = engine.run(seeker, &query, k);
        let exact = exact_scores(&uit, seeker, &query, alpha);
        let expected: Vec<(ItemId, f64)> =
            exact.into_iter().filter(|(_, s)| *s > 0.0).take(k).collect();
        prop_assert_eq!(res.hits.len(), expected.len(), "seed {}", seed);
        for (h, (_, s)) in res.hits.iter().zip(&expected) {
            // Scores must match positionally (set may permute under ties).
            prop_assert!(
                (h.lower - s).abs() <= 1e-9 + 1e-9 * s,
                "seed {seed}: engine {} vs exact {}",
                h.lower,
                s
            );
        }
    }

    /// Bounds bracket: lower ≤ upper, and at termination they coincide
    /// within epsilon for returned hits.
    #[test]
    fn topks_bounds_converge(seed in 0u64..2000) {
        let (uit, users, tags) = random_uit(seed);
        let engine = TopkSEngine::new(&uit, TopkSConfig { alpha: 0.5, epsilon: 1e-12 });
        let res = engine.run(UserId((seed as usize % users) as u32), &tags, 3);
        for h in &res.hits {
            prop_assert!(h.lower <= h.upper + 1e-12);
            prop_assert!(h.upper - h.lower <= 1e-6, "bounds did not converge: {h:?}");
        }
    }
}
