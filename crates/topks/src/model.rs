//! The UIT (user, item, tag) data model of the TopkS baseline.

use s3_core::UserId;
use s3_text::KeywordId;
use std::collections::HashMap;

/// Dense item id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A UIT instance: weighted user graph + tagging triples.
#[derive(Debug, Default)]
pub struct UitInstance {
    num_users: usize,
    num_items: usize,
    /// Outgoing weighted user links (directed).
    user_out: Vec<Vec<(UserId, f64)>>,
    /// (item, tag) → distinct taggers.
    taggers: HashMap<(ItemId, KeywordId), Vec<UserId>>,
    /// (user) → (item, tag) pairs they produced (drives the Dijkstra
    /// accumulation).
    by_user: Vec<Vec<(ItemId, KeywordId)>>,
    /// tag → items carrying it, with raw tagger counts.
    inverted: HashMap<KeywordId, Vec<(ItemId, u32)>>,
    /// tag → max tagger count over items (for normalization).
    max_count: HashMap<KeywordId, u32>,
}

impl UitInstance {
    /// Create an instance with `num_users` users and `num_items` items.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        UitInstance {
            num_users,
            num_items,
            user_out: vec![Vec::new(); num_users],
            by_user: vec![Vec::new(); num_users],
            ..Default::default()
        }
    }

    /// Add a directed weighted user link.
    pub fn add_user_link(&mut self, from: UserId, to: UserId, weight: f64) {
        debug_assert!(weight > 0.0 && weight <= 1.0);
        self.user_out[from.index()].push((to, weight));
    }

    /// Record a `(user, item, tag)` triple. Duplicate taggers for the same
    /// `(item, tag)` are kept once.
    pub fn add_triple(&mut self, user: UserId, item: ItemId, tag: KeywordId) {
        let taggers = self.taggers.entry((item, tag)).or_default();
        if taggers.contains(&user) {
            return;
        }
        taggers.push(user);
        self.by_user[user.index()].push((item, tag));
        let count = taggers.len() as u32;
        let inv = self.inverted.entry(tag).or_default();
        match inv.iter_mut().find(|(i, _)| *i == item) {
            Some(e) => e.1 = count,
            None => inv.push((item, count)),
        }
        let m = self.max_count.entry(tag).or_insert(0);
        if count > *m {
            *m = count;
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Outgoing links of a user.
    pub fn links(&self, u: UserId) -> &[(UserId, f64)] {
        &self.user_out[u.index()]
    }

    /// `(item, tag)` pairs produced by a user.
    pub fn user_triples(&self, u: UserId) -> &[(ItemId, KeywordId)] {
        &self.by_user[u.index()]
    }

    /// Distinct taggers of `(item, tag)`.
    pub fn taggers(&self, item: ItemId, tag: KeywordId) -> &[UserId] {
        self.taggers.get(&(item, tag)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Items carrying a tag, with tagger counts.
    pub fn items_with_tag(&self, tag: KeywordId) -> &[(ItemId, u32)] {
        self.inverted.get(&tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Content score of `(item, tag)`: tagger count normalized by the
    /// maximum count for that tag (a tf-style popularity score in [0, 1]).
    pub fn content_score(&self, item: ItemId, tag: KeywordId) -> f64 {
        let count = self.taggers(item, tag).len() as f64;
        let max = self.max_count.get(&tag).copied().unwrap_or(0) as f64;
        if max == 0.0 {
            0.0
        } else {
            count / max
        }
    }

    /// Total number of `(user, item, tag)` triples.
    pub fn num_triples(&self) -> usize {
        self.taggers.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triples_dedupe_per_tagger() {
        let mut uit = UitInstance::new(2, 1);
        let (u0, i, t) = (UserId(0), ItemId(0), KeywordId(7));
        uit.add_triple(u0, i, t);
        uit.add_triple(u0, i, t);
        uit.add_triple(UserId(1), i, t);
        assert_eq!(uit.taggers(i, t).len(), 2);
        assert_eq!(uit.num_triples(), 2);
        assert_eq!(uit.items_with_tag(t), &[(i, 2)]);
    }

    #[test]
    fn content_score_normalizes_by_max() {
        let mut uit = UitInstance::new(3, 2);
        let t = KeywordId(1);
        uit.add_triple(UserId(0), ItemId(0), t);
        uit.add_triple(UserId(1), ItemId(0), t);
        uit.add_triple(UserId(2), ItemId(1), t);
        assert!((uit.content_score(ItemId(0), t) - 1.0).abs() < 1e-12);
        assert!((uit.content_score(ItemId(1), t) - 0.5).abs() < 1e-12);
        assert_eq!(uit.content_score(ItemId(1), KeywordId(9)), 0.0);
    }

    #[test]
    fn links_are_directed() {
        let mut uit = UitInstance::new(2, 0);
        uit.add_user_link(UserId(0), UserId(1), 0.4);
        assert_eq!(uit.links(UserId(0)).len(), 1);
        assert!(uit.links(UserId(1)).is_empty());
    }
}
