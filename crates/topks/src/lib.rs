//! TopkS — the baseline system the paper compares against (§5.1), a Rust
//! re-implementation of the top-k social search of Maniu & Cautis,
//! *Network-aware search in social tagging applications* (CIKM 2013),
//! reference \[18\] of the paper.
//!
//! TopkS works on the flat **UIT** (user, item, tag) model:
//!
//! * users with weighted links (one number per directed pair);
//! * atomic items — no internal structure, no fragments;
//! * `(user, item, tag)` triples — no semantics, no tag-to-tag relations.
//!
//! The item score blends a social and a content part,
//! `α · social + (1−α) · content` (the paper sweeps α ∈ {0.25, 0.5, 0.75}),
//! where the social proximity between two users is the **single best path**
//! (maximum product of edge weights) — *not* the all-paths aggregation of
//! S3 — explored incrementally with a Dijkstra-style expansion, and the
//! termination uses NRA-style upper bounds in the spirit of Fagin's
//! threshold algorithms (\[8\] in the paper).
//!
//! [`convert`] adapts an S3 instance into UIT exactly as §5.1 describes
//! (tweets merged with their retweets/replies into one item, etc.), so the
//! benchmark harness can run both systems on the same data.

#![warn(missing_docs)]
pub mod convert;
pub mod model;
pub mod search;

pub use convert::{uit_from_s3, UitAdaptation};
pub use model::{ItemId, UitInstance};
pub use search::{TopkSConfig, TopkSEngine, TopkSHit, TopkSResult, TopkSStats};
