//! Adapting an S3 instance to the UIT model (paper §5.1, "Systems").
//!
//! The paper flattens each of its instances for TopkS:
//!
//! * user links are kept with their weights;
//! * "every tweet was merged with all its retweets and replies into a
//!   single item" — in S3 terms, every **content component** (documents
//!   linked by `commentsOn`/`hasSubject` chains) becomes one item, which
//!   generalizes the same construction to I2 (movie = first comment + its
//!   comments) and I3 (business = first review + later ones);
//! * every keyword `k` in a document posted by `u` that belongs to item `i`
//!   yields the triple `(u, i, k)`; tag keywords yield triples from the tag
//!   author.

use crate::model::{ItemId, UitInstance};
use s3_core::{S3Instance, TagSubject, UserId};
use s3_doc::DocNodeId;
use s3_graph::{CompId, EdgeKind, NodeKind};
use std::collections::HashMap;

/// Result of the adaptation: the UIT instance plus the component → item
/// mapping (used by the qualitative-comparison metrics to match S3k
/// fragments with TopkS items).
#[derive(Debug)]
pub struct UitAdaptation {
    /// The flattened instance.
    pub uit: UitInstance,
    /// Content component → item.
    pub item_of_comp: HashMap<CompId, ItemId>,
}

impl UitAdaptation {
    /// The item containing a given document node, if any.
    pub fn item_of_doc(&self, inst: &S3Instance, d: DocNodeId) -> Option<ItemId> {
        let node = inst.graph().node_of_frag(d)?;
        let comp = inst.graph().components().component_of(node);
        self.item_of_comp.get(&comp).copied()
    }
}

/// Flatten an S3 instance into UIT.
pub fn uit_from_s3(inst: &S3Instance) -> UitAdaptation {
    let graph = inst.graph();
    let forest = inst.forest();

    // Items: one per component that contains at least one document node.
    let mut item_of_comp: HashMap<CompId, ItemId> = HashMap::new();
    for node in graph.nodes() {
        if graph.kind(node).is_frag() {
            let comp = graph.components().component_of(node);
            let next = ItemId(item_of_comp.len() as u32);
            item_of_comp.entry(comp).or_insert(next);
        }
    }

    let mut uit = UitInstance::new(inst.num_users(), item_of_comp.len());

    // User links with their weights.
    for u in 0..inst.num_users() {
        let user = UserId(u as u32);
        let node = inst.user_node(user);
        for (target, kind, w) in graph.out_edges(node) {
            if kind == EdgeKind::Social {
                if let NodeKind::User(v) = graph.kind(target) {
                    uit.add_user_link(user, UserId(v), w);
                }
            }
        }
    }

    // Content triples: keywords of a document, attributed to its poster.
    for tree in forest.trees() {
        let Some(poster) = inst.poster_of(tree) else { continue };
        let root_node = graph.node_of_frag(forest.root(tree)).expect("registered");
        let comp = graph.components().component_of(root_node);
        let item = item_of_comp[&comp];
        for idx in forest.tree_range(tree) {
            for &kw in forest.content(DocNodeId(idx as u32)) {
                uit.add_triple(poster, item, kw);
            }
        }
    }

    // Tag triples: tag keywords, attributed to the tag author. The tag's
    // item is the component of its subject (tags sit in the same component
    // as their subject via hasSubject edges).
    for tag in inst.tags() {
        let Some(kw) = tag.keyword else { continue };
        let subject_node = match tag.subject {
            TagSubject::Frag(f) => graph.node_of_frag(f).expect("registered"),
            TagSubject::Tag(_) => tag.node,
        };
        let comp = graph.components().component_of(subject_node);
        if let Some(&item) = item_of_comp.get(&comp) {
            uit.add_triple(tag.author, item, kw);
        }
    }

    UitAdaptation { uit, item_of_comp }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_core::InstanceBuilder;
    use s3_doc::DocBuilder;
    use s3_text::Language;

    #[test]
    fn components_become_items_and_triples_flow() {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user();
        let u1 = b.add_user();
        b.add_social_edge(u0, u1, 0.7);
        let kws = b.analyze("university degree");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws.clone());
        let t0 = b.add_document(doc, Some(u0));
        // A reply by u1 (merged into the same item).
        let kws2 = b.analyze("great university");
        let mut reply = DocBuilder::new("reply");
        reply.set_content(reply.root(), kws2);
        let t1 = b.add_document(reply, Some(u1));
        let target = b.doc_root(t0);
        b.add_comment_edge(t1, target);
        // An unrelated doc: its own item.
        let kws3 = b.analyze("windows");
        let mut other = DocBuilder::new("post");
        other.set_content(other.root(), kws3);
        b.add_document(other, Some(u1));
        let inst = b.build();

        let adapted = uit_from_s3(&inst);
        assert_eq!(adapted.uit.num_items(), 2, "tweet+reply merge into one item");
        assert_eq!(adapted.uit.num_users(), 2);
        // Both posters tagged the merged item with "univers".
        let univers = inst.vocabulary().get("univers").unwrap();
        let item = adapted.item_of_doc(&inst, inst.forest().root(s3_doc::TreeId(0))).unwrap();
        assert_eq!(adapted.uit.taggers(item, univers).len(), 2);
        // The reply's root maps to the same item.
        let reply_item = adapted.item_of_doc(&inst, inst.forest().root(s3_doc::TreeId(1))).unwrap();
        assert_eq!(item, reply_item);
    }

    #[test]
    fn user_links_survive_with_weights() {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user();
        let u1 = b.add_user();
        b.add_social_edge(u0, u1, 0.7);
        let inst = b.build();
        let adapted = uit_from_s3(&inst);
        assert_eq!(adapted.uit.links(UserId(0)), &[(UserId(1), 0.7)]);
        assert!(adapted.uit.links(UserId(1)).is_empty());
    }
}
