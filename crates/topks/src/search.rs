//! The TopkS search: incremental best-path Dijkstra over the user graph
//! plus NRA-style bounds over candidate items.
//!
//! Score of item `i` for seeker `u` and query `Q`:
//!
//! ```text
//! score(i) = Σ_{t ∈ Q}  α · Σ_{v ∈ taggers(i,t)} σ(u, v)  +  (1−α) · content(i, t)
//! ```
//!
//! with `σ(u, v)` the **best-path** proximity (max product of link weights
//! along one path — TopkS's shortest-path model, in contrast to S3's
//! all-paths `prox`). Users are popped from a max-heap in decreasing σ;
//! unseen taggers of an item are bounded by the σ of the next user to pop,
//! giving sound upper bounds and early termination à la NRA/Fagin.

use crate::model::{ItemId, UitInstance};
use s3_core::UserId;
use s3_text::KeywordId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

/// TopkS knobs.
#[derive(Debug, Clone, Copy)]
pub struct TopkSConfig {
    /// Blend between social (α) and content (1−α) parts.
    pub alpha: f64,
    /// Tie/convergence slack.
    pub epsilon: f64,
}

impl Default for TopkSConfig {
    fn default() -> Self {
        TopkSConfig { alpha: 0.5, epsilon: 1e-9 }
    }
}

/// A result item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopkSHit {
    /// The item.
    pub item: ItemId,
    /// Certified lower bound (equals the score at termination).
    pub lower: f64,
    /// Certified upper bound.
    pub upper: f64,
}

/// Diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopkSStats {
    /// Users popped from the proximity heap.
    pub users_popped: usize,
    /// Candidate items considered.
    pub candidates: usize,
    /// Wall-clock microseconds.
    pub micros: u128,
}

/// Search outcome.
#[derive(Debug, Clone)]
pub struct TopkSResult {
    /// Top-k items, best first.
    pub hits: Vec<TopkSHit>,
    /// Diagnostics.
    pub stats: TopkSStats,
}

/// Max-heap entry for the user Dijkstra.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    sigma: f64,
    user: UserId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sigma
            .partial_cmp(&other.sigma)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.user.0.cmp(&self.user.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct ItemState {
    /// α·Σ σ over *seen* taggers + (1−α)·content — the certain part.
    lower: f64,
    /// Unseen taggers per query tag (for the upper bound).
    unseen: Vec<u32>,
}

/// The TopkS engine.
pub struct TopkSEngine<'a> {
    uit: &'a UitInstance,
    config: TopkSConfig,
}

impl<'a> TopkSEngine<'a> {
    /// Bind an engine to an instance.
    pub fn new(uit: &'a UitInstance, config: TopkSConfig) -> Self {
        TopkSEngine { uit, config }
    }

    /// Answer `(seeker, tags, k)`.
    pub fn run(&self, seeker: UserId, tags: &[KeywordId], k: usize) -> TopkSResult {
        let started = Instant::now();
        let uit = self.uit;
        let alpha = self.config.alpha;
        let eps = self.config.epsilon;

        let mut query: Vec<KeywordId> = tags.to_vec();
        query.sort_unstable();
        query.dedup();

        // Candidates: every item carrying at least one query tag. The
        // content part is fully known upfront; the social part accrues.
        let mut items: HashMap<ItemId, ItemState> = HashMap::new();
        for (qi, &t) in query.iter().enumerate() {
            for &(item, count) in uit.items_with_tag(t) {
                let st = items
                    .entry(item)
                    .or_insert_with(|| ItemState { lower: 0.0, unseen: vec![0; query.len()] });
                st.lower += (1.0 - alpha) * uit.content_score(item, t);
                st.unseen[qi] = count;
            }
        }
        let stats_candidates = items.len();

        // Best-path Dijkstra (max-product) over the user graph.
        let mut best: Vec<f64> = vec![0.0; uit.num_users()];
        let mut settled: Vec<bool> = vec![false; uit.num_users()];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        best[seeker.index()] = 1.0;
        heap.push(HeapEntry { sigma: 1.0, user: seeker });

        let mut users_popped = 0usize;
        // Per (item, tag-position): which taggers are already counted is
        // implicit — a user is processed exactly once when settled.
        let tag_pos: HashMap<KeywordId, usize> =
            query.iter().enumerate().map(|(i, &t)| (t, i)).collect();

        let mut sigma_next = 1.0f64;
        loop {
            // Termination test: greedy top-k by upper bound.
            let stop = {
                let mut entries: Vec<(&ItemId, f64, f64)> = items
                    .iter()
                    .map(|(i, st)| {
                        let upper: f64 = st.lower
                            + alpha * st.unseen.iter().map(|&c| c as f64 * sigma_next).sum::<f64>();
                        (i, st.lower, upper)
                    })
                    .collect();
                entries.sort_by(|a, b| {
                    b.2.partial_cmp(&a.2).unwrap_or(Ordering::Equal).then(a.0.cmp(b.0))
                });
                if entries.len() <= k {
                    // All candidates will be returned; exact ordering needs
                    // their own bounds to converge.
                    entries.iter().all(|(_, lo, up)| up - lo <= eps)
                } else {
                    // Returned scores are exact: the top-k bounds must have
                    // converged, and nothing below may overtake them.
                    let kth_lower =
                        entries[..k].iter().map(|(_, lo, _)| *lo).fold(f64::INFINITY, f64::min);
                    entries[..k].iter().all(|(_, lo, up)| up - lo <= eps)
                        && entries[k..].iter().all(|(_, _, up)| *up <= kth_lower + eps)
                }
            };
            if stop || heap.is_empty() {
                break;
            }

            // Pop the next closest user.
            let Some(HeapEntry { sigma, user }) = heap.pop() else { break };
            if settled[user.index()] {
                continue;
            }
            settled[user.index()] = true;
            users_popped += 1;
            sigma_next = sigma; // future pops have σ ≤ this

            // Account this user's triples.
            for &(item, tag) in uit.user_triples(user) {
                if let Some(&qi) = tag_pos.get(&tag) {
                    if let Some(st) = items.get_mut(&item) {
                        st.lower += alpha * sigma;
                        st.unseen[qi] = st.unseen[qi].saturating_sub(1);
                    }
                }
            }

            // Relax links.
            for &(v, w) in uit.links(user) {
                let cand = sigma * w;
                if cand > best[v.index()] {
                    best[v.index()] = cand;
                    heap.push(HeapEntry { sigma: cand, user: v });
                }
            }
            if heap.is_empty() {
                sigma_next = 0.0;
            }
        }
        if heap.is_empty() {
            sigma_next = 0.0;
        }

        // Final ranking by upper (== lower + residual, typically converged).
        let mut ranked: Vec<TopkSHit> = items
            .into_iter()
            .map(|(item, st)| {
                let upper: f64 = st.lower
                    + alpha * st.unseen.iter().map(|&c| c as f64 * sigma_next).sum::<f64>();
                TopkSHit { item, lower: st.lower, upper }
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.upper.partial_cmp(&a.upper).unwrap_or(Ordering::Equal).then(a.item.cmp(&b.item))
        });
        ranked.truncate(k);
        ranked.retain(|h| h.upper > 0.0);

        TopkSResult {
            hits: ranked,
            stats: TopkSStats {
                users_popped,
                candidates: stats_candidates,
                micros: started.elapsed().as_micros(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// u0 → u1 (0.8) → u2 (0.5); u1 tags item0, u2 tags item1.
    fn small() -> UitInstance {
        let mut uit = UitInstance::new(3, 2);
        uit.add_user_link(UserId(0), UserId(1), 0.8);
        uit.add_user_link(UserId(1), UserId(2), 0.5);
        let t = KeywordId(0);
        uit.add_triple(UserId(1), ItemId(0), t);
        uit.add_triple(UserId(2), ItemId(1), t);
        uit
    }

    #[test]
    fn social_part_prefers_closer_tagger() {
        let uit = small();
        let engine = TopkSEngine::new(&uit, TopkSConfig { alpha: 1.0, epsilon: 1e-12 });
        let res = engine.run(UserId(0), &[KeywordId(0)], 2);
        assert_eq!(res.hits.len(), 2);
        assert_eq!(res.hits[0].item, ItemId(0), "tagged by the closer user");
        assert!((res.hits[0].lower - 0.8).abs() < 1e-9);
        assert!((res.hits[1].lower - 0.4).abs() < 1e-9); // 0.8·0.5
    }

    #[test]
    fn alpha_zero_is_pure_content() {
        let mut uit = small();
        // Make item1 more popular: two taggers.
        uit.add_triple(UserId(0), ItemId(1), KeywordId(0));
        let engine = TopkSEngine::new(&uit, TopkSConfig { alpha: 0.0, epsilon: 1e-12 });
        let res = engine.run(UserId(0), &[KeywordId(0)], 2);
        assert_eq!(res.hits[0].item, ItemId(1));
        assert!((res.hits[0].lower - 1.0).abs() < 1e-9);
        assert!((res.hits[1].lower - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sigma_is_best_single_path() {
        // Two paths to u3: 0.9·0.9 = 0.81 and 0.5; best path wins, they do
        // NOT add up (contrast with S3's all-paths prox).
        let mut uit = UitInstance::new(4, 1);
        uit.add_user_link(UserId(0), UserId(1), 0.9);
        uit.add_user_link(UserId(1), UserId(3), 0.9);
        uit.add_user_link(UserId(0), UserId(3), 0.5);
        uit.add_triple(UserId(3), ItemId(0), KeywordId(0));
        let engine = TopkSEngine::new(&uit, TopkSConfig { alpha: 1.0, epsilon: 1e-12 });
        let res = engine.run(UserId(0), &[KeywordId(0)], 1);
        assert!((res.hits[0].lower - 0.81).abs() < 1e-9);
    }

    #[test]
    fn multi_tag_scores_add() {
        let mut uit = UitInstance::new(2, 1);
        uit.add_user_link(UserId(0), UserId(1), 1.0);
        uit.add_triple(UserId(1), ItemId(0), KeywordId(0));
        uit.add_triple(UserId(1), ItemId(0), KeywordId(1));
        let engine = TopkSEngine::new(&uit, TopkSConfig { alpha: 0.5, epsilon: 1e-12 });
        let res = engine.run(UserId(0), &[KeywordId(0), KeywordId(1)], 1);
        // Per tag: 0.5·1.0 (social) + 0.5·1.0 (content) = 1.0; two tags → 2.
        assert!((res.hits[0].lower - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_matching_tag_is_empty() {
        let uit = small();
        let engine = TopkSEngine::new(&uit, TopkSConfig::default());
        let res = engine.run(UserId(0), &[KeywordId(42)], 3);
        assert!(res.hits.is_empty());
    }

    #[test]
    fn unreachable_taggers_still_score_by_content() {
        let mut uit = UitInstance::new(3, 1);
        // No links at all: σ = 0 everywhere except the seeker.
        uit.add_triple(UserId(1), ItemId(0), KeywordId(0));
        let engine = TopkSEngine::new(&uit, TopkSConfig { alpha: 0.5, epsilon: 1e-12 });
        let res = engine.run(UserId(0), &[KeywordId(0)], 1);
        assert_eq!(res.hits.len(), 1);
        assert!((res.hits[0].lower - 0.5).abs() < 1e-9); // content part only
    }

    #[test]
    fn seeker_own_tags_count_with_sigma_one() {
        let mut uit = UitInstance::new(2, 1);
        uit.add_triple(UserId(0), ItemId(0), KeywordId(0));
        let engine = TopkSEngine::new(&uit, TopkSConfig { alpha: 1.0, epsilon: 1e-12 });
        let res = engine.run(UserId(0), &[KeywordId(0)], 1);
        assert!((res.hits[0].lower - 1.0).abs() < 1e-9);
    }
}
