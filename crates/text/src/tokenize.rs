//! Word-level tokenizer used by the analysis pipeline.
//!
//! The paper's corpora are social-media text (tweets, reviews, movie
//! comments); the tokenizer therefore recognizes, besides plain words:
//! `@mentions`, `#hashtags`, URLs and numbers (years like "2012" appear in
//! the running example of Figure 1 and must survive tokenization).

/// Kind of a produced token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word (possibly with internal apostrophes/periods, e.g. "M.S.").
    Word,
    /// `@user` mention.
    Mention,
    /// `#tag` hashtag.
    Hashtag,
    /// `http(s)://...` URL.
    Url,
    /// Digit-initial token, e.g. a year.
    Number,
}

/// A token: a slice of the input plus its classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text (trailing punctuation stripped).
    pub text: String,
    /// Classification of the token.
    pub kind: TokenKind,
}

impl Token {
    fn new(text: impl Into<String>, kind: TokenKind) -> Self {
        Token { text: text.into(), kind }
    }
}

/// Is this character part of a word's interior?
fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '\'' || c == '.' || c == '-' || c == '_'
}

/// Split a text into tokens.
///
/// The splitter is whitespace/punctuation driven; it keeps mentions,
/// hashtags and URLs as single tokens, and strips leading/trailing
/// punctuation from words ("M.S." keeps its internal periods but "sweet,"
/// loses the comma).
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // URL?
        if c == 'h' && starts_with(&chars, i, "http") {
            let start = i;
            while i < n && !chars[i].is_whitespace() {
                i += 1;
            }
            let url: String = chars[start..i].iter().collect();
            if url.starts_with("http://") || url.starts_with("https://") {
                tokens.push(Token::new(trim_punct(&url), TokenKind::Url));
            } else {
                // Not a URL after all: keep it as a plain word.
                let trimmed = trim_punct(&url);
                if !trimmed.is_empty() {
                    tokens.push(Token::new(trimmed, TokenKind::Word));
                }
            }
            continue;
        }
        // Mention / hashtag?
        if (c == '@' || c == '#') && i + 1 < n && is_word_char(chars[i + 1]) {
            let start = i;
            i += 1;
            while i < n && is_word_char(chars[i]) {
                i += 1;
            }
            let raw: String = chars[start..i].iter().collect();
            let kind = if c == '@' { TokenKind::Mention } else { TokenKind::Hashtag };
            tokens.push(Token::new(trim_punct(&raw), kind));
            continue;
        }
        // Word or number.
        if is_word_char(c) {
            let start = i;
            while i < n && is_word_char(chars[i]) {
                i += 1;
            }
            let raw: String = chars[start..i].iter().collect();
            let trimmed = trim_punct(&raw);
            if trimmed.is_empty() {
                continue;
            }
            let kind = if trimmed.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                TokenKind::Number
            } else {
                TokenKind::Word
            };
            tokens.push(Token::new(trimmed, kind));
            continue;
        }
        // Punctuation, emoji, etc.: skipped.
        i += 1;
    }
    tokens
}

/// Does `chars[i..]` start with the ASCII prefix `p`?
fn starts_with(chars: &[char], i: usize, p: &str) -> bool {
    let pc: Vec<char> = p.chars().collect();
    chars.len() - i >= pc.len() && chars[i..i + pc.len()] == pc[..]
}

/// Strip leading/trailing punctuation that is not meaningful inside a token.
fn trim_punct(s: &str) -> String {
    s.trim_matches(|c: char| matches!(c, '\'' | '.' | '-' | '_' | ',' | ';' | ':' | '!' | '?'))
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(input: &str) -> Vec<String> {
        tokenize(input).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_plain_words() {
        assert_eq!(texts("a degree does give"), vec!["a", "degree", "does", "give"]);
    }

    #[test]
    fn keeps_internal_periods() {
        // The running example of Figure 1: "When I got my M.S. @UAlberta in 2012".
        let toks = tokenize("When I got my M.S. @UAlberta in 2012");
        assert!(toks.iter().any(|t| t.text == "M.S" && t.kind == TokenKind::Word));
        assert!(toks.iter().any(|t| t.text == "@UAlberta" && t.kind == TokenKind::Mention));
        assert!(toks.iter().any(|t| t.text == "2012" && t.kind == TokenKind::Number));
    }

    #[test]
    fn hashtags_and_mentions() {
        let toks = tokenize("#EDBT is great, says @icde!");
        assert_eq!(toks[0], Token::new("#EDBT", TokenKind::Hashtag));
        assert!(toks.iter().any(|t| t.text == "@icde" && t.kind == TokenKind::Mention));
    }

    #[test]
    fn urls_are_single_tokens() {
        let toks = tokenize("see https://hal.inria.fr/hal-01277939 now");
        assert_eq!(toks[1].kind, TokenKind::Url);
        assert_eq!(toks[1].text, "https://hal.inria.fr/hal-01277939");
        assert_eq!(toks[2].text, "now");
    }

    #[test]
    fn http_prefix_word_is_not_url() {
        let toks = tokenize("httpexperiment runs");
        assert_eq!(toks[0], Token::new("httpexperiment", TokenKind::Word));
    }

    #[test]
    fn trailing_punctuation_is_stripped() {
        assert_eq!(texts("sweet, really!"), vec!["sweet", "really"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(texts("").is_empty());
        assert!(texts("... !!! ---").is_empty());
    }

    #[test]
    fn unicode_words() {
        assert_eq!(texts("café crème"), vec!["café", "crème"]);
    }

    #[test]
    fn lone_at_sign_is_skipped() {
        assert_eq!(texts("a @ b"), vec!["a", "b"]);
    }
}
