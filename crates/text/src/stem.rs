//! Stemming (paper §2, "Keywords": literals enter the keyword set `K` in
//! stemmed form, e.g. "graduation" and "graduate" collapse together).
//!
//! English text uses the Porter stemming algorithm (M.F. Porter, *An
//! algorithm for suffix stripping*, 1980), implemented here from the
//! published description. Instance I2 (Vodkaster) is French; the paper only
//! says its comments were "stemmed", so we provide a light French suffix
//! stripper in the spirit of the Savoy light stemmer.

/// Convenience stemmer object (language captured once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stemmer {
    /// Porter algorithm.
    English,
    /// Light suffix stripping.
    French,
}

impl Stemmer {
    /// Stem one lowercase word.
    pub fn stem(&self, word: &str) -> String {
        match self {
            Stemmer::English => stem_english(word),
            Stemmer::French => stem_french(word),
        }
    }
}

/// Porter stemmer entry point. Expects a lowercase word; words shorter than
/// 3 characters or containing non-ASCII-alphabetic characters are returned
/// unchanged (mentions, hashtags and URIs never reach this function).
pub fn stem_english(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step_1a(&mut w);
    step_1b(&mut w);
    step_1c(&mut w);
    step_2(&mut w);
    step_3(&mut w);
    step_4(&mut w);
    step_5a(&mut w);
    step_5b(&mut w);
    String::from_utf8(w).expect("ascii in, ascii out")
}

/// Is `w[i]` a consonant in Porter's sense ('y' after a consonant counts as
/// a vowel)?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's measure m of `w[..len]`: the number of VC alternations.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip the initial consonant run.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip a vowel run.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // A consonant run after vowels: one more VC.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
    }
}

/// *v* — does the stem `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// *d — does the stem end in a double consonant?
fn ends_double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

/// *o — does `w[..len]` end in consonant-vowel-consonant where the final
/// consonant is not w, x or y?
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], s: &str) -> bool {
    w.len() >= s.len() && &w[w.len() - s.len()..] == s.as_bytes()
}

/// Replace the suffix `s` (which must be present) by `r`.
fn set_suffix(w: &mut Vec<u8>, s: &str, r: &str) {
    let stem_len = w.len() - s.len();
    w.truncate(stem_len);
    w.extend_from_slice(r.as_bytes());
}

/// If the word ends with `s` and the stem has measure > `min_m`, replace the
/// suffix by `r` and return true.
fn replace_if_m(w: &mut Vec<u8>, s: &str, r: &str, min_m: usize) -> bool {
    if ends_with(w, s) {
        let stem_len = w.len() - s.len();
        if measure(w, stem_len) > min_m {
            set_suffix(w, s, r);
        }
        // Porter: once a listed suffix matches, no other suffix of the same
        // step is tried, even if the measure condition failed.
        return true;
    }
    false
}

fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        set_suffix(w, "sses", "ss");
    } else if ends_with(w, "ies") {
        set_suffix(w, "ies", "i");
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") {
        set_suffix(w, "s", "");
    }
}

fn step_1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            set_suffix(w, "eed", "ee");
        }
        return;
    }
    let stripped = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        set_suffix(w, "ed", "");
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        set_suffix(w, "ing", "");
        true
    } else {
        false
    };
    if !stripped {
        return;
    }
    if ends_with(w, "at") {
        set_suffix(w, "at", "ate");
    } else if ends_with(w, "bl") {
        set_suffix(w, "bl", "ble");
    } else if ends_with(w, "iz") {
        set_suffix(w, "iz", "ize");
    } else if ends_double_consonant(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
        w.pop();
    } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
        w.push(b'e');
    }
}

fn step_1c(w: &mut Vec<u8>) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        set_suffix(w, "y", "i");
    }
}

fn step_2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
        ("logi", "log"),
    ];
    for (s, r) in RULES {
        if replace_if_m(w, s, r, 0) {
            return;
        }
    }
}

fn step_3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (s, r) in RULES {
        if replace_if_m(w, s, r, 0) {
            return;
        }
    }
}

fn step_4(w: &mut Vec<u8>) {
    const RULES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
        "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // Longest match first: "ement" before "ment" before "ent".
    let mut ordered: Vec<&str> = RULES.to_vec();
    ordered.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for s in ordered {
        if ends_with(w, s) {
            let stem_len = w.len() - s.len();
            if measure(w, stem_len) > 1 {
                // "ion" additionally requires the stem to end in s or t.
                if s == "ion" && !(stem_len > 0 && matches!(w[stem_len - 1], b's' | b't')) {
                    return;
                }
                set_suffix(w, s, "");
            }
            return;
        }
    }
}

fn step_5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.pop();
        }
    }
}

fn step_5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w) && w[w.len() - 1] == b'l' {
        w.pop();
    }
}

/// Light French stemmer: plural/feminine endings and the most common
/// derivational suffixes, with a minimum stem length of 3 characters.
pub fn stem_french(word: &str) -> String {
    let mut w = word.to_string();
    // Plural / feminine endings, applied repeatedly ("magnifiques" →
    // "magnifique" → "magnifiqu" ...).
    const ENDINGS: &[&str] = &[
        "issement",
        "issements",
        "atrice",
        "ateur",
        "ation",
        "ations",
        "ement",
        "ements",
        "ité",
        "ités",
        "ique",
        "iques",
        "isme",
        "ismes",
        "able",
        "ables",
        "iste",
        "istes",
        "euse",
        "euses",
        "ance",
        "ances",
        "ence",
        "ences",
        "ment",
        "ments",
        "eur",
        "eurs",
        "ère",
        "ères",
        "ais",
        "ait",
        "ant",
        "ants",
        "ante",
        "antes",
        "ons",
        "ent",
        "ez",
        "er",
        "es",
        "e",
        "s",
        "x",
    ];
    let mut changed = true;
    while changed {
        changed = false;
        for suffix in ENDINGS {
            if w.ends_with(suffix) {
                let stem_chars = w.chars().count() - suffix.chars().count();
                if stem_chars >= 3 {
                    let cut: usize =
                        w.char_indices().nth(stem_chars).map(|(i, _)| i).unwrap_or(w.len());
                    w.truncate(cut);
                    changed = true;
                }
                break;
            }
        }
    }
    // "aux" plural → "al" ("journaux" → "journal"-ish).
    if w.ends_with("au") && w.chars().count() > 4 {
        w.truncate(w.len() - 2);
        w.push_str("al");
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference pairs from Porter's paper and the classic test vocabulary.
    #[test]
    fn porter_reference_pairs() {
        let pairs = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in pairs {
            assert_eq!(stem_english(input), expected, "stem({input})");
        }
    }

    #[test]
    fn stems_used_in_the_paper() {
        // §2: stemming replaces "graduation" with (the stem shared with)
        // "graduate" — both must collapse to the same keyword.
        assert_eq!(stem_english("graduation"), stem_english("graduate"));
        assert_eq!(stem_english("graduation"), "graduat");
        assert_eq!(stem_english("university"), stem_english("universities"));
        assert_eq!(stem_english("university"), "univers");
        assert_eq!(stem_english("degree"), "degre");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem_english("ms"), "ms");
        assert_eq!(stem_english("a"), "a");
    }

    #[test]
    fn non_ascii_untouched() {
        assert_eq!(stem_english("café"), "café");
    }

    #[test]
    fn measure_is_correct() {
        // Porter's examples: m(TR)=0, m(TREE)=0, m(TROUBLE)=1 (without final
        // e it is "troubl"), m(TROUBLES)=2.
        assert_eq!(measure(b"tr", 2), 0);
        assert_eq!(measure(b"tree", 4), 0);
        assert_eq!(measure(b"trouble", 7), 1);
        assert_eq!(measure(b"troubles", 8), 2);
        assert_eq!(measure(b"oaten", 5), 2);
        assert_eq!(measure(b"private", 7), 2);
    }

    #[test]
    fn y_as_vowel_and_consonant() {
        assert!(is_consonant(b"yes", 0)); // initial y
        assert!(!is_consonant(b"by", 1)); // y after consonant = vowel
        assert!(is_consonant(b"say", 2)); // y after vowel = consonant
    }

    #[test]
    fn collapses_inflection_families() {
        // The property the S3 pipeline relies on is that inflectional
        // variants of a word map to the same keyword (Porter is NOT
        // idempotent in general, and does not need to be: raw words are
        // stemmed exactly once).
        for family in [
            &["connect", "connected", "connecting", "connection", "connections"][..],
            &["review", "reviews", "reviewed", "reviewing"][..],
            &["university", "universities"][..],
            &["graduate", "graduation", "graduating"][..],
        ] {
            let stems: Vec<String> = family.iter().map(|w| stem_english(w)).collect();
            assert!(stems.windows(2).all(|w| w[0] == w[1]), "{family:?} -> {stems:?}");
        }
    }

    #[test]
    fn french_plural_and_suffixes() {
        assert_eq!(stem_french("films"), "film");
        assert_eq!(stem_french("magnifiques"), stem_french("magnifique"));
        assert!(stem_french("actrices").starts_with("actri"));
        assert_eq!(stem_french("chanteur"), stem_french("chanteurs"));
    }

    #[test]
    fn french_min_stem_length() {
        // Never strip below 3 characters.
        assert_eq!(stem_french("les"), "les");
        assert_eq!(stem_french("une"), "une");
    }
}
