//! Keyword interning and corpus statistics.
//!
//! Everything downstream of text analysis manipulates dense [`KeywordId`]s
//! rather than strings: document content (`S3:contains` objects), tag
//! keywords (`S3:hasKeyword`), the RDF keyword bridge and query keywords all
//! share one [`Vocabulary`].
//!
//! The vocabulary also tracks per-keyword corpus frequencies: the paper's
//! query workloads (§5.1) draw "rare" keywords from the 25% least frequent
//! and "common" keywords from the 25% most frequent of the document set.

use s3_snap::{put_str, put_u64v, put_usize, SnapError, SnapReader};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for KeywordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kw{}", self.0)
    }
}

/// Frequency class of a keyword relative to the corpus, as used by the
/// paper's workload generator (§5.1): `Rare` = bottom quartile, `Common` =
/// top quartile of document frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrequencyClass {
    /// Among the 25% least frequent keywords (paper notation `−`).
    Rare,
    /// Among the 25% most frequent keywords (paper notation `+`).
    Common,
    /// Middle half.
    Middle,
}

/// String interner with occurrence counts.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    by_text: HashMap<String, KeywordId>,
    texts: Vec<String>,
    /// Total number of occurrences recorded per keyword.
    occurrences: Vec<u64>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a keyword without recording an occurrence.
    pub fn intern(&mut self, text: &str) -> KeywordId {
        if let Some(&id) = self.by_text.get(text) {
            return id;
        }
        let id = KeywordId(self.texts.len() as u32);
        self.by_text.insert(text.to_string(), id);
        self.texts.push(text.to_string());
        self.occurrences.push(0);
        id
    }

    /// Intern a keyword and record one corpus occurrence.
    pub fn intern_counted(&mut self, text: &str) -> KeywordId {
        let id = self.intern(text);
        self.occurrences[id.index()] += 1;
        id
    }

    /// Record `n` additional occurrences of an already-interned keyword.
    pub fn add_occurrences(&mut self, id: KeywordId, n: u64) {
        self.occurrences[id.index()] += n;
    }

    /// Look up a keyword by text.
    pub fn get(&self, text: &str) -> Option<KeywordId> {
        self.by_text.get(text).copied()
    }

    /// The text of a keyword.
    pub fn text(&self, id: KeywordId) -> &str {
        &self.texts[id.index()]
    }

    /// Number of occurrences recorded for `id`.
    pub fn frequency(&self, id: KeywordId) -> u64 {
        self.occurrences[id.index()]
    }

    /// Number of distinct keywords.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// True when no keyword has been interned.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Total occurrences over all keywords.
    pub fn total_occurrences(&self) -> u64 {
        self.occurrences.iter().sum()
    }

    /// Iterate over `(id, text, frequency)`.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str, u64)> + '_ {
        self.texts
            .iter()
            .enumerate()
            .map(|(i, t)| (KeywordId(i as u32), t.as_str(), self.occurrences[i]))
    }

    /// Classify every keyword with at least one occurrence into frequency
    /// quartiles (paper §5.1). Returns a function-like table: index by
    /// `KeywordId::index()`. Zero-occurrence keywords (query-only interns)
    /// are classified `Rare`.
    pub fn frequency_classes(&self) -> Vec<FrequencyClass> {
        let mut counted: Vec<(u64, usize)> = self
            .occurrences
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (c, i))
            .collect();
        counted.sort_unstable();
        let n = counted.len();
        let mut classes = vec![FrequencyClass::Rare; self.len()];
        if n == 0 {
            return classes;
        }
        let q1 = n / 4; // first quartile boundary (bottom 25%)
        let q3 = n - n / 4; // last quartile boundary (top 25%)
        for (rank, &(_, idx)) in counted.iter().enumerate() {
            classes[idx] = if rank < q1.max(1) {
                FrequencyClass::Rare
            } else if rank >= q3.min(n.saturating_sub(1)) {
                FrequencyClass::Common
            } else {
                FrequencyClass::Middle
            };
        }
        classes
    }

    /// Keywords of a given class, cheapest-first (useful for deterministic
    /// workload sampling).
    pub fn keywords_in_class(&self, class: FrequencyClass) -> Vec<KeywordId> {
        let classes = self.frequency_classes();
        let mut out: Vec<KeywordId> = (0..self.len() as u32)
            .map(KeywordId)
            .filter(|k| self.occurrences[k.index()] > 0 && classes[k.index()] == class)
            .collect();
        out.sort_unstable_by_key(|k| (self.occurrences[k.index()], k.0));
        out
    }

    /// Serialize for the durable snapshot format (`s3-core`'s snapshot
    /// module): interned texts in id order plus occurrence counts. The
    /// text→id index is rebuilt on read, so the encoding is independent
    /// of hash-map iteration order.
    pub fn snap_write(&self, out: &mut Vec<u8>) {
        put_usize(out, self.texts.len());
        for (text, &occ) in self.texts.iter().zip(&self.occurrences) {
            put_str(out, text);
            put_u64v(out, occ);
        }
    }

    /// Decode a vocabulary written by [`Self::snap_write`]. Never panics
    /// on malformed input.
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.seq(2)?;
        let mut v = Vocabulary {
            by_text: HashMap::with_capacity(n),
            texts: Vec::with_capacity(n),
            occurrences: Vec::with_capacity(n),
        };
        for i in 0..n {
            let text = r.str()?;
            let occ = r.u64v()?;
            if v.by_text.insert(text.to_owned(), KeywordId(i as u32)).is_some() {
                return Err(SnapError::Value("duplicate vocabulary text"));
            }
            v.texts.push(text.to_owned());
            v.occurrences.push(occ);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut v = Vocabulary::new();
        let a = v.intern("degree");
        let b = v.intern("university");
        let a2 = v.intern("degree");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.text(a), "degree");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn frequencies_accumulate() {
        let mut v = Vocabulary::new();
        let a = v.intern_counted("x");
        v.intern_counted("x");
        v.intern_counted("y");
        assert_eq!(v.frequency(a), 2);
        assert_eq!(v.total_occurrences(), 3);
    }

    #[test]
    fn quartile_classification() {
        let mut v = Vocabulary::new();
        // 8 keywords with frequencies 1..=8: bottom quartile = {1,2},
        // top quartile = {7,8}.
        for i in 1..=8u64 {
            let id = v.intern(&format!("k{i}"));
            v.add_occurrences(id, i);
        }
        let classes = v.frequency_classes();
        let class_of = |t: &str| classes[v.get(t).unwrap().index()];
        assert_eq!(class_of("k1"), FrequencyClass::Rare);
        assert_eq!(class_of("k2"), FrequencyClass::Rare);
        assert_eq!(class_of("k4"), FrequencyClass::Middle);
        assert_eq!(class_of("k7"), FrequencyClass::Common);
        assert_eq!(class_of("k8"), FrequencyClass::Common);
    }

    #[test]
    fn class_lists_are_sorted_and_disjoint() {
        let mut v = Vocabulary::new();
        for i in 1..=20u64 {
            let id = v.intern(&format!("k{i}"));
            v.add_occurrences(id, i * i);
        }
        let rare = v.keywords_in_class(FrequencyClass::Rare);
        let common = v.keywords_in_class(FrequencyClass::Common);
        assert!(!rare.is_empty() && !common.is_empty());
        assert!(rare.iter().all(|k| !common.contains(k)));
        for w in rare.windows(2) {
            assert!(v.frequency(w[0]) <= v.frequency(w[1]));
        }
    }

    #[test]
    fn single_keyword_corpus() {
        let mut v = Vocabulary::new();
        v.intern_counted("only");
        let classes = v.frequency_classes();
        // One keyword: it lands in the rare bucket by the max(1) guard.
        assert_eq!(classes.len(), 1);
    }
}
