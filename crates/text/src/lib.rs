//! Text-processing substrate for the S3 reproduction.
//!
//! The paper (§2, "Keywords") defines the keyword set `K` as "all the URIs,
//! plus the stemmed version of all literals": every text node of a document is
//! broken into words, stop words are removed and the remaining words are
//! stemmed. This crate provides exactly that pipeline:
//!
//! * [`tokenize()`]: a lightweight Unicode-aware word splitter that also
//!   understands the social-media artifacts the paper's datasets contain
//!   (`@mentions`, `#hashtags`, URLs);
//! * [`stopwords`]: English and French stop-word lists (instance I2 is a
//!   French movie-review corpus);
//! * [`stem`]: the Porter stemming algorithm for English, implemented from
//!   the published description, plus a light French suffix stripper;
//! * [`vocab`]: a keyword interner ([`Vocabulary`]) producing the dense
//!   [`KeywordId`]s used throughout the other crates, together with corpus
//!   frequency statistics (needed to split query workloads into the paper's
//!   "rare" / "common" keyword classes, §5.1).
//!
//! # Example
//!
//! ```
//! use s3_text::{Analyzer, Language};
//!
//! let mut analyzer = Analyzer::new(Language::English);
//! let kws = analyzer.analyze("When I got my M.S. @UAlberta in 2012, graduation was sweet");
//! let words: Vec<&str> = kws.iter().map(|k| analyzer.vocabulary().text(*k)).collect();
//! // "graduation" stems to "graduat", stop words are gone, the mention is kept.
//! assert!(words.contains(&"graduat"));
//! assert!(words.contains(&"@ualberta"));
//! assert!(!words.contains(&"when"));
//! ```

#![warn(missing_docs)]
pub mod stem;
pub mod stopwords;
pub mod tokenize;
pub mod vocab;

pub use stem::{stem_english, stem_french, Stemmer};
pub use stopwords::StopWords;
pub use tokenize::{tokenize, Token, TokenKind};
pub use vocab::{FrequencyClass, KeywordId, Vocabulary};

/// Natural language of a corpus; selects the stop-word list and the stemmer.
///
/// The paper's I1 (Twitter) and I3 (Yelp) instances are English, I2
/// (Vodkaster) is French.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// English: Porter stemmer + English stop words.
    English,
    /// French: light suffix stripper + French stop words.
    French,
}

impl Language {
    /// Serialize for the durable snapshot format: one discriminant byte.
    pub fn snap_write(self, out: &mut Vec<u8>) {
        out.push(match self {
            Language::English => 0,
            Language::French => 1,
        });
    }

    /// Decode a language written by [`Self::snap_write`].
    pub fn snap_read(r: &mut s3_snap::SnapReader<'_>) -> Result<Self, s3_snap::SnapError> {
        match r.u8()? {
            0 => Ok(Language::English),
            1 => Ok(Language::French),
            _ => Err(s3_snap::SnapError::Value("language discriminant")),
        }
    }
}

/// End-to-end text analysis pipeline: tokenize, drop stop words, stem, intern.
///
/// This is the component every document/tag ingestion path goes through; it
/// owns the [`Vocabulary`] so corpus-wide keyword statistics accumulate as
/// documents are analyzed.
#[derive(Debug)]
pub struct Analyzer {
    language: Language,
    stopwords: StopWords,
    vocabulary: Vocabulary,
}

impl Analyzer {
    /// Create an analyzer for the given language with an empty vocabulary.
    pub fn new(language: Language) -> Self {
        Analyzer {
            language,
            stopwords: StopWords::for_language(language),
            vocabulary: Vocabulary::new(),
        }
    }

    /// Reassemble an analyzer from a language and a previously-accumulated
    /// vocabulary (the snapshot load path: stop words are derived from the
    /// language, so only these two parts are persisted).
    pub fn from_parts(language: Language, vocabulary: Vocabulary) -> Self {
        Analyzer { language, stopwords: StopWords::for_language(language), vocabulary }
    }

    /// The language this analyzer was built for.
    pub fn language(&self) -> Language {
        self.language
    }

    /// Analyze a text: returns the interned keywords of its content, in
    /// order, with stop words removed and the rest stemmed (paper §2,
    /// "Keywords"). Every returned keyword's corpus frequency is incremented.
    pub fn analyze(&mut self, text: &str) -> Vec<KeywordId> {
        let mut out = Vec::new();
        for token in tokenize(text) {
            if let Some(normalized) = self.normalize(&token) {
                out.push(self.vocabulary.intern_counted(&normalized));
            }
        }
        out
    }

    /// Analyze a text without touching corpus frequencies (used for queries:
    /// a query keyword should not inflate the corpus statistics).
    pub fn analyze_query(&mut self, text: &str) -> Vec<KeywordId> {
        let mut out = Vec::new();
        for token in tokenize(text) {
            if let Some(normalized) = self.normalize(&token) {
                out.push(self.vocabulary.intern(&normalized));
            }
        }
        out
    }

    /// Normalize a single token: `None` when it is a stop word.
    fn normalize(&self, token: &Token) -> Option<String> {
        match token.kind {
            TokenKind::Word => {
                let lower = token.text.to_lowercase();
                if self.stopwords.contains(&lower) {
                    return None;
                }
                let stemmed = match self.language {
                    Language::English => stem_english(&lower),
                    Language::French => stem_french(&lower),
                };
                Some(stemmed)
            }
            // Mentions, hashtags, URLs and numbers are kept verbatim
            // (lowercased): they behave like URIs in the paper's model.
            TokenKind::Mention | TokenKind::Hashtag | TokenKind::Url | TokenKind::Number => {
                Some(token.text.to_lowercase())
            }
        }
    }

    /// Access the accumulated vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Mutable access to the vocabulary (e.g. to intern URIs as keywords).
    pub fn vocabulary_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocabulary
    }

    /// Consume the analyzer, returning its vocabulary.
    pub fn into_vocabulary(self) -> Vocabulary {
        self.vocabulary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_removes_stopwords_and_stems() {
        let mut a = Analyzer::new(Language::English);
        let kws = a.analyze("the universities are graduating");
        let words: Vec<&str> = kws.iter().map(|k| a.vocabulary().text(*k)).collect();
        assert_eq!(words, vec!["univers", "graduat"]);
    }

    #[test]
    fn pipeline_keeps_social_tokens() {
        let mut a = Analyzer::new(Language::English);
        let kws = a.analyze("#EDBT2016 by @inria");
        let words: Vec<&str> = kws.iter().map(|k| a.vocabulary().text(*k)).collect();
        assert_eq!(words, vec!["#edbt2016", "@inria"]);
    }

    #[test]
    fn query_analysis_does_not_count_frequencies() {
        let mut a = Analyzer::new(Language::English);
        let k = a.analyze_query("university")[0];
        assert_eq!(a.vocabulary().frequency(k), 0);
        let k2 = a.analyze("university")[0];
        assert_eq!(k, k2);
        assert_eq!(a.vocabulary().frequency(k), 1);
    }

    #[test]
    fn french_pipeline() {
        let mut a = Analyzer::new(Language::French);
        let kws = a.analyze("les films magnifiques");
        let words: Vec<&str> = kws.iter().map(|k| a.vocabulary().text(*k)).collect();
        assert!(!words.contains(&"les"));
        assert!(words.contains(&"film"));
    }
}
