//! Stop-word lists (paper §2, "Keywords": stop words are removed before
//! stemming). English covers I1/I3, French covers I2.

use crate::Language;
use std::collections::HashSet;

/// English stop words (classic SMART-style short list).
const ENGLISH: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren't",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn't",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "with",
    "won't",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// French stop words.
const FRENCH: &[&str] = &[
    "au", "aux", "avec", "ce", "ces", "cet", "cette", "dans", "de", "des", "du", "elle", "elles",
    "en", "et", "eux", "il", "ils", "je", "la", "le", "les", "leur", "leurs", "lui", "ma", "mais",
    "me", "mes", "moi", "mon", "ne", "nos", "notre", "nous", "on", "ou", "où", "par", "pas",
    "pour", "qu", "que", "qui", "sa", "se", "ses", "son", "sur", "ta", "te", "tes", "toi", "ton",
    "tu", "un", "une", "vos", "votre", "vous", "y", "à", "été", "être", "est", "sont", "avait",
    "avoir", "cela", "ça", "comme", "plus", "très", "tout", "tous", "toute", "toutes",
];

/// A stop-word set for one language.
#[derive(Debug, Clone)]
pub struct StopWords {
    words: HashSet<&'static str>,
}

impl StopWords {
    /// The built-in list for `language`.
    pub fn for_language(language: Language) -> Self {
        let list = match language {
            Language::English => ENGLISH,
            Language::French => FRENCH,
        };
        StopWords { words: list.iter().copied().collect() }
    }

    /// Is `word` (already lowercased) a stop word?
    pub fn contains(&self, word: &str) -> bool {
        self.words.contains(word)
    }

    /// Number of stop words in the list.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the list is empty (never true for built-in lists).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_basics() {
        let sw = StopWords::for_language(Language::English);
        for w in ["the", "a", "when", "i", "my", "in", "does"] {
            assert!(sw.contains(w), "{w} should be a stop word");
        }
        assert!(!sw.contains("university"));
        assert!(!sw.contains("degree"));
    }

    #[test]
    fn french_basics() {
        let sw = StopWords::for_language(Language::French);
        for w in ["le", "la", "les", "un", "des", "très"] {
            assert!(sw.contains(w), "{w} should be a stop word");
        }
        assert!(!sw.contains("film"));
    }

    #[test]
    fn lists_have_no_duplicates() {
        assert_eq!(ENGLISH.len(), StopWords::for_language(Language::English).len());
        assert_eq!(FRENCH.len(), StopWords::for_language(Language::French).len());
    }
}
