//! Property tests for the text pipeline: total functions, stable outputs.

use proptest::prelude::*;
use s3_text::{stem_english, stem_french, tokenize, Analyzer, Language};

proptest! {
    /// The tokenizer never panics and never produces empty token texts.
    #[test]
    fn tokenizer_is_total(input in ".{0,300}") {
        for token in tokenize(&input) {
            prop_assert!(!token.text.is_empty());
        }
    }

    /// Tokenizing is insensitive to surrounding whitespace.
    #[test]
    fn tokenizer_ignores_outer_whitespace(input in "[a-z #@]{0,60}") {
        let padded = format!("  \t{input}\n ");
        prop_assert_eq!(tokenize(&input), tokenize(&padded));
    }

    /// The Porter stemmer is total, never grows lowercase ASCII words, and
    /// never returns an empty stem for a non-empty input.
    #[test]
    fn porter_is_total_and_shrinking(word in "[a-z]{1,20}") {
        let stem = stem_english(&word);
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.len() <= word.len() + 1, "{word} -> {stem}"); // 1b can add 'e'
    }

    /// The French stemmer preserves a ≥3-char stem for long words.
    #[test]
    fn french_keeps_minimum_stem(word in "[a-zéèà]{4,20}") {
        let stem = stem_french(&word);
        prop_assert!(stem.chars().count() >= 3, "{word} -> {stem}");
    }

    /// Analysis is deterministic and its interning stable: analyzing twice
    /// yields the same keyword ids.
    #[test]
    fn analysis_is_deterministic(input in "[a-zA-Z #@.]{0,120}") {
        let mut a = Analyzer::new(Language::English);
        let first = a.analyze(&input);
        let second = a.analyze(&input);
        prop_assert_eq!(first, second);
    }

    /// Every analyzed keyword resolves back through the vocabulary.
    #[test]
    fn keywords_resolve(input in "[a-zA-Z ]{0,100}") {
        let mut a = Analyzer::new(Language::English);
        for kw in a.analyze(&input) {
            let text = a.vocabulary().text(kw).to_string();
            prop_assert_eq!(a.vocabulary().get(&text), Some(kw));
        }
    }
}
