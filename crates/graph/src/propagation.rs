//! Proximity propagation: the paper's `borderProx` iteration (§5.2),
//! computing the concrete social proximity of §3.4 exactly.
//!
//! # Semantics
//!
//! The concrete proximity (Definition 3.3 instantiated in §3.4) is
//!
//! ```text
//! prox(u, b) = Cγ · Σ_{p ∈ u⇝b} prox→(p) / γ^|p|,    Cγ = (γ−1)/γ
//! ```
//!
//! where `u⇝b` ranges over *all* social paths — chains of network edges in
//! which consecutive edges meet inside a vertical neighborhood — and
//! `prox→(p)` is the product of the *normalized* edge weights along `p`
//! (§2.5: each edge's weight is divided by `W(neigh(n))`, the total weight
//! leaving the vertical neighborhood of the node `n` the path arrived at).
//!
//! # Algorithm
//!
//! Let `x_j(v)` be the total normalized-weight mass of paths of length `j`
//! from the seeker that end **exactly at** node `v`. One step maps
//! `x_j → x_{j+1}`:
//!
//! 1. emission density `ρ(n) = x_j(n) / W(neigh(n))` for every border node;
//! 2. per tree, `emit(m) = Σ_{n : m ∈ neigh(n)} ρ(n)`, computed with an
//!    ancestor prefix pass plus a subtree suffix pass (O(tree));
//! 3. for every network edge `e: m → t`, `x_{j+1}(t) += emit(m) · w(e)`.
//!
//! The accumulated proximity to a node is then
//! `prox≤n(u, b) = Σ_{v ∈ neigh(b) ∪ {b}} acc(v)` with
//! `acc(v) = Cγ Σ_{j≤n} x_j(v)/γ^j`, maintained incrementally (`acc_nb`).
//!
//! # Attenuation bound
//!
//! Normalized out-weights of a neighborhood sum to exactly 1 (0 at sinks),
//! so the border mass `M_j = Σ_v x_j(v)` never increases, giving
//! `prox − prox≤n ≤ M_n / γ^{n+1}` ([`Propagation::bound_beyond`]) — the
//! paper's `B>n_prox`, which tends to 0 and drives S3k's stop condition.
//!
//! # Hot-path layout and reduction order
//!
//! The per-node fields `step_into` touches together — `x`, `x_next`,
//! `acc`, `acc_nb` and the visited flags — live in one `NodeBuffers`
//! struct-of-arrays block with a single shared length discipline, and the
//! boolean flags (`visited`, per-tree journal membership) are word-packed
//! [`crate::BitSet`]s: 64 flags per cache line word instead of one per
//! byte. Edge emission reads the graph's CSR ranges as contiguous slices
//! ([`SocialGraph::out_edge_slices`]) so the neighbor multiply-adds run in
//! tight bounds-check-free loops the compiler can vectorize.
//!
//! The floating-point **reduction order is fixed** and part of the API
//! contract (engine parity asserts byte-identical results):
//!
//! * emission units are processed as *active trees in ascending tree id*,
//!   then *user/tag singles in frontier order*;
//! * within a unit, edges are emitted in CSR order (tree nodes ascending,
//!   each node's out-edges in insertion order);
//! * each contribution is added into `x_next[target]` **at emission time**
//!   on the sequential path, so per-target accumulation order equals the
//!   emission order above — exactly the order the seed implementation
//!   produced by buffering `(target, Δmass)` pairs and merging them
//!   sequentially;
//! * the parallel path buffers per-worker contributions and merges them in
//!   worker-index (= chunk) order, matching the seed's join order; it is
//!   bit-for-bit stable for a fixed thread count and set-wise identical to
//!   the sequential path.
//!
//! The `reduction_order_is_emission_order` test pins this down.
//!
//! # Reuse across queries
//!
//! A `Propagation` owns O(|graph|) buffers. Building them per query is the
//! dominant allocation cost of a search, so the serving layer reuses one
//! `Propagation` per worker: [`Propagation::reset`] rewinds to a fresh
//! seeker without reallocating, and [`Propagation::step_into`] appends the
//! newly-reached nodes to a caller-owned buffer. Steady-state stepping
//! performs **zero heap allocations** on both the sequential and the
//! parallel path (`crates/graph/tests/alloc.rs` enforces this with a
//! counting allocator): the parallel fan-out runs on a persistent parked
//! worker pool (`crate::pool`) whose per-worker buffers are retained in
//! the state.
//!
//! Two lifecycle refinements keep the per-query fixed cost proportional to
//! the search extent rather than the graph:
//!
//! * **Sparse reset** — every write to the `x`/`acc`/`acc_nb`/`visited`
//!   buffers is journaled (visited nodes in first-visit order, plus the
//!   trees whose `acc_nb` ranges were refreshed), so [`Propagation::reset`]
//!   clears only the entries a search actually touched: O(touched), not
//!   O(|graph|).
//! * **Resume** — the propagation depends only on (graph, γ, seeker), never
//!   on the query, and `prox≤n` is monotone in `n`. A propagation left at
//!   step `n` can therefore serve a later query from the same seeker by
//!   *continuing* instead of resetting; [`Propagation::visited_journal`]
//!   replays the discovery seeds (the concatenation of every step's
//!   newly-visited list) and [`Propagation::frontier_closed`] restores the
//!   driver's frontier flag. [`Propagation::detach`] /
//!   [`Propagation::attach`] move the buffers through a graph-independent
//!   [`PropagationState`] so a serving layer can pool warm propagations
//!   keyed by seeker.

use std::sync::Mutex;

use crate::bitset::BitSet;
use crate::graph::SocialGraph;
use crate::node::{NodeId, NodeKind};
use crate::pool::EmitPool;
use s3_doc::TreeId;

/// Incremental all-paths proximity evaluation from one seeker: a graph
/// borrow over a [`PropagationState`] (the buffers detach for pooling via
/// [`Propagation::detach`] / [`Propagation::attach`]).
#[derive(Debug)]
pub struct Propagation<'g> {
    graph: &'g SocialGraph,
    s: PropagationState,
}

/// The per-node hot fields of a propagation, kept as one struct-of-arrays
/// block with a single shared length (`x.len() == x_next.len() ==
/// acc.len() == acc_nb.len() == visited.len()`, the graph's node count).
/// `step_into` streams these together, so co-sizing them keeps the resize
/// discipline in one place and the working set contiguous per field.
#[derive(Debug, Default)]
struct NodeBuffers {
    /// Border mass `x_n(v)` per node.
    x: Vec<f64>,
    /// Scratch: next border mass.
    x_next: Vec<f64>,
    /// `Cγ Σ_{j≤n} x_j(v)/γ^j` per node.
    acc: Vec<f64>,
    /// `Σ_{v' ∈ neigh(v)} acc(v')` per node: the bounded proximity
    /// `prox≤n(seeker, v)`.
    acc_nb: Vec<f64>,
    /// Has the node ever carried border mass? Word-packed.
    visited: BitSet,
}

impl NodeBuffers {
    /// The shared length (number of nodes the buffers are sized for).
    fn len(&self) -> usize {
        self.x.len()
    }

    /// Size every buffer for `n` nodes and clear all content (the cold
    /// attach path; reuses capacity).
    fn reset_for(&mut self, n: usize) {
        for buf in [&mut self.x, &mut self.x_next, &mut self.acc, &mut self.acc_nb] {
            buf.clear();
            buf.resize(n, 0.0);
        }
        self.visited.clear_all();
        self.visited.resize(n);
    }

    /// Grow every buffer to `n` nodes, zero-filling the extension and
    /// preserving existing content (the rebase path).
    fn grow_to(&mut self, n: usize) {
        for buf in [&mut self.x, &mut self.x_next, &mut self.acc, &mut self.acc_nb] {
            buf.resize(n, 0.0);
        }
        self.visited.resize(n);
    }
}

/// The graph-independent buffers of a [`Propagation`], detached so a
/// serving layer can pool warm propagations without borrowing the graph.
///
/// A default state is empty; [`Propagation::attach`] sizes it for the
/// graph on first use. A detached state remembers which graph and γ it
/// was built for, so `attach` can tell a warm same-graph state (buffers
/// and step preserved — the resume path) from a stale one (buffers
/// recycled, propagation reseeded).
#[derive(Debug, Default)]
pub struct PropagationState {
    /// Identity of the graph the buffers are sized and filled for (the
    /// graph's address; 0 = never attached / invalidated).
    graph_tag: usize,
    gamma: f64,
    c_gamma: f64,
    /// `γ^n`, maintained by one multiply per step (no `powi` on the
    /// per-candidate bound path).
    gamma_pow: f64,
    /// Number of explore steps done so far (`n`).
    step: u32,
    /// The node the propagation was seeded from.
    seeker: NodeId,
    /// The per-node SoA block (`x`, `x_next`, `acc`, `acc_nb`, `visited`).
    nodes: NodeBuffers,
    /// Nodes with `x > 0`.
    frontier: Vec<u32>,
    /// `M_n`: total border mass.
    border_mass: f64,
    /// Did some step produce no newly-visited node? Absorbing: the visited
    /// set can never grow again afterwards.
    frontier_closed: bool,
    /// Journal of visited nodes in first-visit order: the seeker, then
    /// every step's newly-visited list. Exactly the nodes with `x`, `acc`
    /// or `visited` writes — what [`Propagation::reset`] must clear, and
    /// what a resumed search replays through discovery.
    touched: Vec<u32>,
    /// Journal of trees whose `acc_nb` range was refreshed, deduplicated
    /// via `tree_touched`.
    touched_trees: Vec<TreeId>,
    /// Per-tree membership flag for `touched_trees`. Word-packed.
    tree_touched: BitSet,
    /// Scratch: frontier being assembled for the next step.
    frontier_next: Vec<u32>,
    /// Scratch: active trees of the current frontier, deduplicated.
    unit_trees: Vec<TreeId>,
    /// Scratch: active user/tag nodes of the current frontier.
    unit_singles: Vec<u32>,
    /// Scratch: per-tree prefix/suffix passes.
    tree_scratch: TreeScratch,
    /// Scratch: the flattened unit list a parallel step fans out over.
    par_units: Vec<Unit>,
    /// Per-worker retained emission buffers (each worker locks only its
    /// own slot, so the locks are never contended).
    workers: Vec<Mutex<EmitWorker>>,
    /// Parked worker threads for the parallel path, spawned on the first
    /// fan-out and reused for every later step.
    pool: Option<EmitPool>,
    /// Backing buffer for the [`Propagation::step`] convenience wrappers,
    /// reused across calls.
    newly_buf: Vec<NodeId>,
}

impl PropagationState {
    /// An empty state: the first [`Propagation::attach`] allocates.
    pub fn new() -> Self {
        PropagationState::default()
    }

    /// Number of explore steps the detached propagation had performed.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// The seeker the detached propagation is warm for (meaningful only
    /// after at least one attach).
    pub fn seeker(&self) -> NodeId {
        self.seeker
    }

    /// Does this state hold a warm propagation for `graph` at damping
    /// `gamma` (i.e. would [`Propagation::attach`] preserve it)?
    pub fn warm_for(&self, graph: &SocialGraph, gamma: f64) -> bool {
        self.graph_tag == graph_tag(graph)
            && self.gamma == gamma
            && self.nodes.len() == graph.num_nodes()
            && self.tree_touched.len() == graph.forest().num_trees()
    }

    /// Forget what this state was warm for: the next
    /// [`Propagation::attach`] rebuilds it from scratch (reusing only the
    /// allocations). The serving layer calls this whenever a state loses
    /// its seeker binding or epoch stamp, so a later attach can never
    /// silently resume work done under an invalidated configuration.
    pub fn invalidate(&mut self) {
        self.graph_tag = 0;
    }

    /// Re-home a state warm for `from` onto `to`, **without** losing its
    /// warmth: per-node buffers grow (zero-filled) to the new graph's
    /// sizes and the identity tag moves, so the next
    /// [`Propagation::attach`] on `to` resumes instead of reseeding.
    ///
    /// Caller contract (live ingestion's *detached* deltas): `to` must be
    /// `from` plus strictly appended nodes and trees — every
    /// previously-existing node keeps its id, out-edges, weights and
    /// neighborhood weight, and no appended node is reachable from any
    /// previously-visited one. Under that contract the propagation's past
    /// *and future* on `to` coincide with what they would have been on
    /// `from`, step for step. Returns `false` (and invalidates the state)
    /// when the state was not warm for `(from, gamma)` or the sizes
    /// shrink; resuming it would then be unsound.
    pub fn rebase(&mut self, from: &SocialGraph, to: &SocialGraph, gamma: f64) -> bool {
        if !self.warm_for(from, gamma)
            || self.nodes.len() > to.num_nodes()
            || self.tree_touched.len() > to.forest().num_trees()
        {
            self.invalidate();
            return false;
        }
        self.nodes.grow_to(to.num_nodes());
        self.tree_touched.resize(to.forest().num_trees());
        self.graph_tag = graph_tag(to);
        true
    }
}

/// The identity tag stored in a detached state: the graph's address.
/// Address reuse after a graph is dropped could collide, but a state is
/// only ever re-attached by the owner that detached it (the serving
/// layer's pool, keyed per engine), matching the `std::ptr::eq` contract
/// the search driver already applies to reused propagations.
fn graph_tag(graph: &SocialGraph) -> usize {
    std::ptr::from_ref(graph) as usize
}

/// Reusable per-tree buffers for the ancestor/subtree aggregation passes.
#[derive(Debug, Default)]
struct TreeScratch {
    rho: Vec<f64>,
    anc: Vec<f64>,
    sub: Vec<f64>,
    trees: Vec<TreeId>,
}

/// One emission work item: a whole active tree, or a single user/tag node.
#[derive(Debug, Clone, Copy)]
enum Unit {
    Tree(TreeId),
    Single(u32),
}

/// Retained state of one parallel emission worker: its contribution buffer
/// and tree scratch, kept warm across steps so the parallel path stops
/// allocating after its high-water marks are reached.
#[derive(Debug, Default)]
struct EmitWorker {
    out: Vec<(u32, f64)>,
    scratch: TreeScratch,
}

/// Where a unit's `(target, Δmass)` contributions go. The two
/// implementations share the per-edge multiply but differ in what happens
/// to the product: the sequential path scatters straight into `x_next`
/// (preserving the seed's per-target accumulation order exactly), the
/// parallel workers buffer pairs for an ordered merge.
trait EmitSink {
    /// Emit `scale · weights[i]` to `targets[i]` for every edge of one
    /// CSR range. `targets` and `weights` are index-aligned contiguous
    /// slices, so implementations iterate them zipped — a tight
    /// bounds-check-free loop over the multiply.
    fn emit(&mut self, targets: &[NodeId], weights: &[f64], scale: f64);
}

/// Parallel-worker sink: append `(target, Δmass)` pairs for a later
/// ordered merge.
struct BufSink<'a>(&'a mut Vec<(u32, f64)>);

impl EmitSink for BufSink<'_> {
    #[inline]
    fn emit(&mut self, targets: &[NodeId], weights: &[f64], scale: f64) {
        self.0.extend(targets.iter().zip(weights).map(|(&t, &w)| (t.0, scale * w)));
    }
}

/// Sequential sink: accumulate into `x_next` at emission time and record
/// first-mass targets. Addition order per target equals emission order,
/// which is what keeps the sequential path bit-identical to the seed's
/// buffer-then-merge formulation.
struct ScatterSink<'a> {
    x_next: &'a mut [f64],
    frontier_next: &'a mut Vec<u32>,
}

impl EmitSink for ScatterSink<'_> {
    #[inline]
    fn emit(&mut self, targets: &[NodeId], weights: &[f64], scale: f64) {
        for (&t, &w) in targets.iter().zip(weights) {
            scatter(self.x_next, self.frontier_next, t.0, scale * w);
        }
    }
}

/// Add one contribution to `x_next[target]`, recording the target in
/// `frontier_next` when it goes from zero to positive mass. The single
/// accumulation point of both the sequential scatter and the parallel
/// merge — one definition, one rounding behavior.
#[inline]
fn scatter(x_next: &mut [f64], frontier_next: &mut Vec<u32>, target: u32, dm: f64) {
    let slot = &mut x_next[target as usize];
    if *slot == 0.0 && dm > 0.0 {
        frontier_next.push(target);
    }
    *slot += dm;
}

/// Emit one unit's contributions into `sink`: ρ-scaled CSR edge ranges for
/// a user/tag single, or the ancestor-prefix + subtree-suffix aggregated
/// emission of a whole document tree. Reads only `graph` and the current
/// border `x`, so the caller can split-borrow the rest of the state for
/// the sink.
fn emit_unit(
    graph: &SocialGraph,
    x: &[f64],
    unit: Unit,
    scratch: &mut TreeScratch,
    sink: &mut impl EmitSink,
) {
    match unit {
        Unit::Single(v) => {
            let node = NodeId(v);
            let w = graph.neighborhood_weight(node);
            if w <= 0.0 {
                return;
            }
            let rho = x[v as usize] / w;
            let (targets, weights) = graph.out_edge_slices(node);
            sink.emit(targets, weights, rho);
        }
        Unit::Tree(tree) => {
            let range = graph.tree_node_range(tree).expect("active tree registered");
            let forest = graph.forest();
            let doc_range = forest.tree_range(tree);
            let len = range.len();
            let base = range.start;
            let first_doc = doc_range.start;
            // ρ per tree node.
            let rho = &mut scratch.rho;
            rho.clear();
            rho.resize(len, 0.0);
            for (i, r) in rho.iter_mut().enumerate() {
                let node = base + i;
                let w = graph.neighborhood_weight(NodeId(node as u32));
                if w > 0.0 {
                    *r = x[node] / w;
                }
            }
            // emit(m) = Σ_{n : m ∈ neigh(n)} ρ(n)
            //         = (strict-ancestor ρ sum) + (subtree ρ sum incl self).
            let anc = &mut scratch.anc;
            anc.clear();
            anc.resize(len, 0.0);
            let sub = &mut scratch.sub;
            sub.clear();
            sub.extend_from_slice(rho);
            #[allow(clippy::needless_range_loop)] // i indexes three arrays
            for i in 0..len {
                let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                if let Some(p) = forest.parent(doc) {
                    let pi = p.index() - first_doc;
                    anc[i] = anc[pi] + rho[pi];
                }
            }
            for i in (0..len).rev() {
                let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                if let Some(p) = forest.parent(doc) {
                    let pi = p.index() - first_doc;
                    sub[pi] += sub[i];
                }
            }
            for i in 0..len {
                let emit = anc[i] + sub[i];
                if emit <= 0.0 {
                    continue;
                }
                let (targets, weights) = graph.out_edge_slices(NodeId((base + i) as u32));
                sink.emit(targets, weights, emit);
            }
        }
    }
}

impl<'g> Propagation<'g> {
    /// Start a propagation from `seeker` with damping `gamma > 1`.
    pub fn new(graph: &'g SocialGraph, gamma: f64, seeker: NodeId) -> Self {
        Propagation::attach(graph, gamma, seeker, PropagationState::new())
    }

    /// Bind a detached [`PropagationState`] back to a graph. A state warm
    /// for `(graph, gamma)` keeps its buffers and step count: if its
    /// seeker equals `seeker` the propagation is ready to *resume*;
    /// otherwise it is [`Self::reset`] (sparse, O(touched)). Any other
    /// state — fresh, or from a different graph or damping — has its
    /// buffers recycled and the propagation is seeded from scratch.
    pub fn attach(
        graph: &'g SocialGraph,
        gamma: f64,
        seeker: NodeId,
        state: PropagationState,
    ) -> Self {
        assert!(gamma > 1.0, "the proximity series requires γ > 1");
        let warm = state.warm_for(graph, gamma);
        let mut engine = Propagation { graph, s: state };
        if warm {
            if engine.s.seeker != seeker {
                engine.reset(seeker);
            }
        } else {
            // Stale or fresh state: size every per-node buffer for this
            // graph (reusing capacity where the buffers are large enough)
            // and start cold.
            engine.s.gamma = gamma;
            engine.s.c_gamma = (gamma - 1.0) / gamma;
            let s = &mut engine.s;
            s.nodes.reset_for(graph.num_nodes());
            s.tree_touched.clear_all();
            s.tree_touched.resize(graph.forest().num_trees());
            s.frontier.clear();
            s.frontier_next.clear();
            s.touched.clear();
            s.touched_trees.clear();
            engine.rewind(seeker);
        }
        engine
    }

    /// Detach the buffers for pooling; [`Self::attach`] restores them.
    pub fn detach(self) -> PropagationState {
        let mut state = self.s;
        state.graph_tag = graph_tag(self.graph);
        state
    }

    /// Rewind to step 0 from a (possibly different) seeker, clearing only
    /// the journaled entries: O(touched nodes + touched tree sizes), not
    /// O(|graph|), and no allocation regardless of the previous search's
    /// extent. Equivalent to `Propagation::new(graph, gamma, seeker)`.
    pub fn reset(&mut self, seeker: NodeId) {
        // `x_next` is all-zero between steps (`advance` zeroes the old
        // border before swapping), so only the journaled buffers hold
        // residue: x/acc/visited at visited nodes, acc_nb at visited
        // users/tags and over every refreshed tree's full node range.
        let nodes = &mut self.s.nodes;
        for &v in &self.s.touched {
            let v = v as usize;
            nodes.x[v] = 0.0;
            nodes.acc[v] = 0.0;
            nodes.acc_nb[v] = 0.0;
            nodes.visited.clear(v);
        }
        self.s.touched.clear();
        for &tree in &self.s.touched_trees {
            let range = self.graph.tree_node_range(tree).expect("journaled tree registered");
            nodes.acc_nb[range].fill(0.0);
            self.s.tree_touched.clear(tree.index());
        }
        self.s.touched_trees.clear();
        self.s.frontier.clear();
        self.rewind(seeker);
    }

    /// Reinstall the step-0 invariants and seed `seeker` (shared by
    /// [`Self::reset`] and the cold [`Self::attach`] path; callers have
    /// already cleared the per-node buffers and journals).
    fn rewind(&mut self, seeker: NodeId) {
        self.s.step = 0;
        self.s.gamma_pow = 1.0;
        self.s.border_mass = 1.0;
        self.s.frontier_closed = false;
        self.s.seeker = seeker;
        self.seed(seeker);
    }

    /// Install the seeker's initial mass (the empty path, prox→ = 1).
    fn seed(&mut self, seeker: NodeId) {
        self.s.nodes.x[seeker.index()] = 1.0;
        self.s.nodes.visited.set(seeker.index());
        self.s.nodes.acc[seeker.index()] = self.s.c_gamma;
        self.s.frontier.push(seeker.0);
        self.s.touched.push(seeker.0);
        let frontier = std::mem::take(&mut self.s.frontier);
        self.refresh_acc_nb(&frontier);
        self.s.frontier = frontier;
    }

    /// The damping factor γ.
    pub fn gamma(&self) -> f64 {
        self.s.gamma
    }

    /// The graph this propagation's buffers are sized for.
    pub fn graph(&self) -> &'g SocialGraph {
        self.graph
    }

    /// Number of steps performed.
    pub fn iteration(&self) -> u32 {
        self.s.step
    }

    /// The node this propagation was seeded from.
    pub fn seeker(&self) -> NodeId {
        self.s.seeker
    }

    /// `M_n`, the current total border mass.
    pub fn border_mass(&self) -> f64 {
        self.s.border_mass
    }

    /// Has this node ever carried border mass?
    pub fn visited(&self, node: NodeId) -> bool {
        self.s.nodes.visited.get(node.index())
    }

    /// Every visited node in first-visit order: the seeker, then each
    /// step's newly-visited list in turn — exactly the sequence a search
    /// driver fed to discovery while this propagation advanced, which is
    /// what lets a resumed same-seeker search replay discovery in the
    /// original admission order.
    pub fn visited_journal(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.s.touched.iter().map(|&v| NodeId(v))
    }

    /// Number of nodes the propagation has written to (the cost driver of
    /// [`Self::reset`]).
    pub fn touched_count(&self) -> usize {
        self.s.touched.len()
    }

    /// Has some step produced no newly-visited node? Once true the
    /// visited set can never grow again (closure is absorbing), so the
    /// search's undiscovered-document threshold collapses to 0.
    pub fn frontier_closed(&self) -> bool {
        self.s.frontier_closed
    }

    /// `prox≤n(seeker, node)`: proximity over the paths explored so far.
    pub fn prox_leq(&self, node: NodeId) -> f64 {
        self.s.nodes.acc_nb[node.index()]
    }

    /// `B>n`: a bound on `prox − prox≤n` valid for **every** node
    /// simultaneously (DESIGN.md §3.2): `M_n / γ^{n+1}`. `γ^n` is carried
    /// incrementally (one multiply per [`Self::step_into`]), so evaluating
    /// the bound per candidate costs one divide, not a `powi`.
    pub fn bound_beyond(&self) -> f64 {
        self.s.border_mass / (self.s.gamma_pow * self.s.gamma)
    }

    /// An upper bound on the full proximity to `node`.
    pub fn prox_upper(&self, node: NodeId) -> f64 {
        (self.prox_leq(node) + self.bound_beyond()).min(1.0)
    }

    /// Run one explore step (Algorithm 3's `ExploreStep`, in `borderProx`
    /// form). Returns the nodes that received border mass for the first
    /// time, in a state-owned buffer reused across calls (copy it out with
    /// `.to_vec()` to hold it across the next mutating call).
    pub fn step(&mut self) -> &[NodeId] {
        let mut newly = std::mem::take(&mut self.s.newly_buf);
        self.step_into(1, false, &mut newly);
        self.s.newly_buf = newly;
        &self.s.newly_buf
    }

    /// Parallel variant: the emission work is split over `threads` workers
    /// (§5.2 reports ~2× with 8 threads); the merge stays sequential. The
    /// result is bit-for-bit independent of `threads` up to floating-point
    /// addition order within a target node, and set-wise identical.
    ///
    /// The workers are parked threads reused across steps; dispatching to
    /// them still costs a few microseconds of hand-off, so emission falls
    /// back to sequential below [`Self::PARALLEL_CUTOFF`] emission units
    /// (see `crates/graph/benches/propagation.rs` for the measured
    /// crossover). Returns the newly-visited nodes in a state-owned buffer
    /// reused across calls.
    pub fn step_parallel(&mut self, threads: usize) -> &[NodeId] {
        let mut newly = std::mem::take(&mut self.s.newly_buf);
        self.step_into(threads.max(1), false, &mut newly);
        self.s.newly_buf = newly;
        &self.s.newly_buf
    }

    /// Like [`Self::step_parallel`] but fans out regardless of the cutoff.
    /// For tests and benchmarks of the parallel path itself.
    pub fn step_parallel_forced(&mut self, threads: usize) -> &[NodeId] {
        let mut newly = std::mem::take(&mut self.s.newly_buf);
        self.step_into(threads.max(1), true, &mut newly);
        self.s.newly_buf = newly;
        &self.s.newly_buf
    }

    /// Allocation-free step: `newly` is cleared, then filled with the nodes
    /// that received border mass for the first time (in ascending id
    /// order). `threads = 1` is fully sequential; `force_parallel` skips
    /// the [`Self::PARALLEL_CUTOFF`] heuristic.
    pub fn step_into(&mut self, threads: usize, force_parallel: bool, newly: &mut Vec<NodeId>) {
        newly.clear();
        self.collect_units();
        let units = self.s.unit_trees.len() + self.s.unit_singles.len();
        let fan_out =
            threads > 1 && units >= 2 && (force_parallel || units >= Self::parallel_cutoff());
        if fan_out {
            self.emit_parallel(threads);
        } else {
            // Split-borrow the state: emission reads `x` and the unit
            // lists while the sink scatters into `x_next`/`frontier_next`.
            let s = &mut self.s;
            let NodeBuffers { x, x_next, .. } = &mut s.nodes;
            let mut sink = ScatterSink { x_next, frontier_next: &mut s.frontier_next };
            for &tree in &s.unit_trees {
                emit_unit(self.graph, x, Unit::Tree(tree), &mut s.tree_scratch, &mut sink);
            }
            for &v in &s.unit_singles {
                emit_unit(self.graph, x, Unit::Single(v), &mut s.tree_scratch, &mut sink);
            }
        }
        self.advance(newly);
    }

    /// Minimum number of emission units (active trees + active users/tags)
    /// before a parallel step actually fans out.
    ///
    /// Re-measured against the SoA layout with the sweep in
    /// `crates/graph/benches/propagation.rs` (`cargo bench --bench
    /// propagation` prints per-step sequential vs forced-parallel
    /// timings alongside the unit count). Dispatching to the parked
    /// `EmitPool` costs only microseconds (the scoped spawns it
    /// replaced cost ~100µs per step), but that is no longer what the
    /// cutoff protects against: the parallel path must buffer `(target,
    /// Δmass)` pairs per worker and merge them sequentially, while the
    /// sequential path scatters into `x_next` at emission time — so the
    /// fan-out only pays once the per-worker emission compute outweighs
    /// a full extra pass over the emitted edges. On the 2-core benchmark
    /// host the forced-parallel step stayed ~2× slower than sequential
    /// through the largest measured frontier (~6k units), i.e. no
    /// crossover was observed in range; the cutoff therefore keeps its
    /// conservative seed value, well above that range, pending a
    /// measurement on a wider machine (the paper's ~2× at 8 threads
    /// implies the crossover exists at scale).
    ///
    /// Re-deriving the crossover on such a machine does not require a
    /// rebuild: set `S3_PARALLEL_CUTOFF=<units>` in the environment and
    /// the hot path uses that value instead (read once at first use —
    /// see [`Self::parallel_cutoff`]). The constant stays the default.
    pub const PARALLEL_CUTOFF: usize = 32_768;

    /// The effective parallel cutoff: [`Self::PARALLEL_CUTOFF`] unless
    /// the `S3_PARALLEL_CUTOFF` environment variable overrides it.
    ///
    /// The variable is read **once**, on first use, and cached for the
    /// life of the process — the hot path costs one relaxed atomic load,
    /// and changing the environment afterwards has no effect. Values
    /// that fail to parse as `usize` fall back to the default. `0`
    /// means "always fan out" (any multi-unit step parallelizes);
    /// `usize::MAX` effectively disables the parallel path.
    pub fn parallel_cutoff() -> usize {
        static CUTOFF: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *CUTOFF.get_or_init(|| {
            std::env::var("S3_PARALLEL_CUTOFF")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(Self::PARALLEL_CUTOFF)
        })
    }

    /// Fill `unit_trees`/`unit_singles` with this step's emission units.
    fn collect_units(&mut self) {
        self.s.unit_trees.clear();
        self.s.unit_singles.clear();
        for &v in &self.s.frontier {
            match self.graph.kind(NodeId(v)) {
                NodeKind::User(_) | NodeKind::Tag(_) => self.s.unit_singles.push(v),
                NodeKind::Frag(f) => self.s.unit_trees.push(self.graph.forest().tree_of(f)),
            }
        }
        self.s.unit_trees.sort_unstable();
        self.s.unit_trees.dedup();
    }

    /// Fan the emission units out over the parked worker pool, then merge
    /// the per-worker buffers in worker-index order. Steady-state
    /// allocation-free: the pool, the unit list and every worker buffer
    /// are retained in the state between steps.
    fn emit_parallel(&mut self, threads: usize) {
        let s = &mut self.s;
        s.par_units.clear();
        s.par_units.extend(s.unit_trees.iter().copied().map(Unit::Tree));
        s.par_units.extend(s.unit_singles.iter().copied().map(Unit::Single));
        // The pool only ever grows; a steady thread count reuses it.
        if s.pool.as_ref().is_none_or(|p| p.workers() < threads) {
            s.pool = Some(EmitPool::new(threads));
        }
        let pool = s.pool.as_ref().expect("pool just ensured");
        while s.workers.len() < pool.workers() {
            s.workers.push(Mutex::new(EmitWorker::default()));
        }

        let graph = self.graph;
        let x: &[f64] = &s.nodes.x;
        let units: &[Unit] = &s.par_units;
        let workers: &[Mutex<EmitWorker>] = &s.workers;
        // Same chunking as the seed's scoped-thread fan-out, so the merge
        // order (and thus the floating-point result) is unchanged.
        let chunk = units.len().div_ceil(threads);
        pool.run(&|i| {
            let worker = &mut *workers[i].lock().expect("worker buffer poisoned");
            worker.out.clear();
            let start = (i * chunk).min(units.len());
            let end = ((i + 1) * chunk).min(units.len());
            let mut sink = BufSink(&mut worker.out);
            for &u in &units[start..end] {
                emit_unit(graph, x, u, &mut worker.scratch, &mut sink);
            }
        });

        // Merge in worker-index (= chunk) order.
        let NodeBuffers { x_next, .. } = &mut s.nodes;
        for cell in &s.workers {
            let worker = cell.lock().expect("worker buffer poisoned");
            for &(t, dm) in &worker.out {
                scatter(x_next, &mut s.frontier_next, t, dm);
            }
        }
    }

    /// Swap in the merged border, advance the iteration counter, update
    /// `acc`, `acc_nb` and the visited set; push first-time nodes to
    /// `newly`.
    fn advance(&mut self, newly: &mut Vec<NodeId>) {
        let s = &mut self.s;
        s.frontier_next.sort_unstable();
        s.frontier_next.dedup();

        // Swap in the new border; clear the old one.
        for &v in &s.frontier {
            s.nodes.x[v as usize] = 0.0;
        }
        std::mem::swap(&mut s.nodes.x, &mut s.nodes.x_next);
        std::mem::swap(&mut s.frontier, &mut s.frontier_next);
        s.frontier_next.clear();
        s.step += 1;
        s.gamma_pow *= s.gamma;

        // Accumulate Cγ·x_n(v)/γ^n and refresh neighborhood sums.
        let factor = s.c_gamma / s.gamma_pow;
        s.border_mass = 0.0;
        let frontier = std::mem::take(&mut s.frontier);
        for &v in &frontier {
            let m = s.nodes.x[v as usize];
            s.border_mass += m;
            s.nodes.acc[v as usize] += m * factor;
            if s.nodes.visited.insert(v as usize) {
                s.touched.push(v);
                newly.push(NodeId(v));
            }
        }
        s.frontier_closed |= newly.is_empty();
        self.refresh_acc_nb(&frontier);
        self.s.frontier = frontier;
    }

    /// Recompute `acc_nb` for every node whose neighborhood contains a node
    /// of `touched`: users/tags affect only themselves, fragments affect
    /// their whole tree.
    fn refresh_acc_nb(&mut self, touched: &[u32]) {
        let mut scratch = std::mem::take(&mut self.s.tree_scratch);
        let trees = &mut scratch.trees;
        trees.clear();
        let nodes = &mut self.s.nodes;
        for &v in touched {
            match self.graph.kind(NodeId(v)) {
                NodeKind::User(_) | NodeKind::Tag(_) => {
                    nodes.acc_nb[v as usize] = nodes.acc[v as usize];
                }
                NodeKind::Frag(f) => trees.push(self.graph.forest().tree_of(f)),
            }
        }
        trees.sort_unstable();
        trees.dedup();
        for &tree in trees.iter() {
            if self.s.tree_touched.insert(tree.index()) {
                self.s.touched_trees.push(tree);
            }
            let range = self.graph.tree_node_range(tree).expect("registered");
            let forest = self.graph.forest();
            let first_doc = forest.tree_range(tree).start;
            let base = range.start;
            let len = range.len();
            let anc = &mut scratch.anc;
            anc.clear();
            anc.resize(len, 0.0);
            let sub = &mut scratch.sub;
            sub.clear();
            sub.extend((0..len).map(|i| nodes.acc[base + i]));
            for i in 0..len {
                let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                if let Some(p) = forest.parent(doc) {
                    let pi = p.index() - first_doc;
                    anc[i] = anc[pi] + nodes.acc[base + pi];
                }
            }
            for i in (0..len).rev() {
                let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                if let Some(p) = forest.parent(doc) {
                    let pi = p.index() - first_doc;
                    sub[pi] += sub[i];
                }
            }
            for i in 0..len {
                nodes.acc_nb[base + i] = anc[i] + sub[i];
            }
        }
        self.s.tree_scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeKind;
    use crate::graph::GraphBuilder;
    use s3_doc::{DocBuilder, Forest};

    /// Two users and a single-node document: u0 —posted— d, u0 —social→ u1.
    fn small() -> (SocialGraph, NodeId, NodeId, NodeId) {
        let mut forest = Forest::new();
        let t = forest.add_document(DocBuilder::new("doc"));
        let mut g = GraphBuilder::new(forest);
        let u0 = g.add_user();
        let u1 = g.add_user();
        let d = g.register_tree(t);
        g.add_edge(d, u0, EdgeKind::PostedBy, 1.0);
        g.add_edge(u0, u1, EdgeKind::Social, 0.3);
        (g.build(), u0, u1, d)
    }

    #[test]
    fn example_3_1_first_step_proximity() {
        // Paper Example 3.1: prox≤1(u0, URI0) = (1/(1+0.3)) / γ · Cγ under
        // our Cγ-normalized series.
        let (g, u0, _u1, d) = small();
        let gamma = 2.0;
        let mut p = Propagation::new(&g, gamma, u0);
        p.step();
        let c_gamma = (gamma - 1.0) / gamma;
        let expected = c_gamma * (1.0 / 1.3) / gamma;
        assert!((p.prox_leq(d) - expected).abs() < 1e-12, "{} vs {expected}", p.prox_leq(d));
    }

    #[test]
    fn empty_path_gives_self_proximity() {
        let (g, u0, u1, _) = small();
        let p = Propagation::new(&g, 2.0, u0);
        assert!((p.prox_leq(u0) - 0.5).abs() < 1e-12); // Cγ = 1/2
        assert_eq!(p.prox_leq(u1), 0.0);
    }

    #[test]
    fn border_mass_never_increases() {
        let (g, u0, _, _) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        let mut last = p.border_mass();
        for _ in 0..6 {
            p.step();
            assert!(p.border_mass() <= last + 1e-12);
            last = p.border_mass();
        }
    }

    #[test]
    fn prox_is_monotone_and_bounded() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        let mut prev = [p.prox_leq(u1), p.prox_leq(d)];
        for _ in 0..10 {
            p.step();
            let cur = [p.prox_leq(u1), p.prox_leq(d)];
            for (a, b) in prev.iter().zip(cur.iter()) {
                assert!(b + 1e-12 >= *a, "prox must be non-decreasing");
                assert!(*b <= 1.0 + 1e-12);
            }
            prev = cur;
        }
    }

    #[test]
    fn bound_beyond_shrinks_to_zero() {
        let (g, u0, _, _) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        let mut prev = p.bound_beyond();
        for _ in 0..20 {
            p.step();
            assert!(p.bound_beyond() <= prev + 1e-12);
            prev = p.bound_beyond();
        }
        assert!(prev < 1e-3);
    }

    #[test]
    fn newly_visited_reported_once() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 2.0, u0);
        let first = p.step().to_vec();
        // u0's out edges: postedBy⁻ to d and social to u1.
        assert_eq!(first, vec![u1, d]);
        let second = p.step();
        // Mass flows back to u0 (already visited): nothing new.
        assert!(second.is_empty());
        assert!(p.visited(u0) && p.visited(u1) && p.visited(d));
    }

    #[test]
    fn parallel_step_matches_sequential() {
        let (g, u0, u1, d) = small();
        let mut seq = Propagation::new(&g, 1.5, u0);
        let mut par = Propagation::new(&g, 1.5, u0);
        for _ in 0..6 {
            seq.step();
            par.step_parallel_forced(4);
            for node in [u0, u1, d] {
                assert!((seq.prox_leq(node) - par.prox_leq(node)).abs() < 1e-12);
            }
            assert!((seq.border_mass() - par.border_mass()).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_matches_fresh_propagation() {
        let (g, u0, u1, d) = small();
        // Drive one propagation far from u0, then reset it to u1.
        let mut reused = Propagation::new(&g, 1.5, u0);
        for _ in 0..8 {
            reused.step();
        }
        reused.reset(u1);
        let mut fresh = Propagation::new(&g, 1.5, u1);
        for node in [u0, u1, d] {
            assert_eq!(reused.prox_leq(node), fresh.prox_leq(node));
            assert_eq!(reused.visited(node), fresh.visited(node));
        }
        for _ in 0..6 {
            let a = reused.step();
            let b = fresh.step();
            assert_eq!(a, b);
            for node in [u0, u1, d] {
                assert_eq!(reused.prox_leq(node), fresh.prox_leq(node));
            }
            assert_eq!(reused.border_mass(), fresh.border_mass());
            assert_eq!(reused.bound_beyond(), fresh.bound_beyond());
        }
    }

    #[test]
    fn journal_is_first_visit_order() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 2.0, u0);
        assert_eq!(p.visited_journal().collect::<Vec<_>>(), vec![u0]);
        let newly = p.step().to_vec();
        assert_eq!(
            p.visited_journal().collect::<Vec<_>>(),
            std::iter::once(u0).chain(newly).collect::<Vec<_>>()
        );
        let before = p.touched_count();
        p.step(); // no new nodes
        assert_eq!(p.touched_count(), before);
        assert_eq!(p.visited_journal().len(), 3);
        assert!([u0, u1, d].iter().all(|&n| p.visited(n)));
    }

    #[test]
    fn frontier_closure_is_absorbing() {
        let (g, u0, _, _) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        assert!(!p.frontier_closed());
        let mut closed_at = None;
        for i in 0..10 {
            let newly_empty = p.step().is_empty();
            if p.frontier_closed() {
                closed_at.get_or_insert(i);
                assert!(newly_empty || closed_at != Some(i));
            } else {
                assert!(closed_at.is_none(), "closure must be absorbing");
            }
        }
        assert!(closed_at.is_some(), "a 3-node graph closes within 10 steps");
        p.reset(u0);
        assert!(!p.frontier_closed(), "reset reopens the frontier");
    }

    #[test]
    fn incremental_gamma_power_matches_powi() {
        let (g, u0, _, _) = small();
        for gamma in [1.1, 1.5, 2.0, 3.7] {
            let mut p = Propagation::new(&g, gamma, u0);
            for _ in 0..40 {
                p.step();
                let n = p.iteration() as i32;
                let direct = p.border_mass() / gamma.powi(n + 1);
                let rel = if direct == 0.0 {
                    p.bound_beyond().abs()
                } else {
                    ((p.bound_beyond() - direct) / direct).abs()
                };
                assert!(rel < 1e-12, "γ={gamma} n={n}: {} vs {direct}", p.bound_beyond());
            }
        }
    }

    #[test]
    fn detach_attach_preserves_a_warm_same_seeker_propagation() {
        let (g, u0, u1, d) = small();
        let mut warm = Propagation::new(&g, 1.5, u0);
        let mut cold = Propagation::new(&g, 1.5, u0);
        for _ in 0..3 {
            warm.step();
            cold.step();
        }
        let state = warm.detach();
        assert_eq!(state.step(), 3);
        assert_eq!(state.seeker(), u0);
        assert!(state.warm_for(&g, 1.5));
        assert!(!state.warm_for(&g, 2.0), "γ mismatch must not resume");
        let mut warm = Propagation::attach(&g, 1.5, u0, state);
        assert_eq!(warm.iteration(), 3, "same seeker: state preserved");
        for _ in 0..4 {
            let a = warm.step().to_vec();
            let b = cold.step();
            assert_eq!(a, b);
        }
        for node in [u0, u1, d] {
            assert_eq!(warm.prox_leq(node), cold.prox_leq(node));
        }
        assert_eq!(warm.bound_beyond(), cold.bound_beyond());
    }

    #[test]
    fn attach_with_other_seeker_or_gamma_starts_cold() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        for _ in 0..5 {
            p.step();
        }
        // Same γ, different seeker: sparse reset inside attach.
        let p = Propagation::attach(&g, 1.5, u1, p.detach());
        let fresh = Propagation::new(&g, 1.5, u1);
        assert_eq!(p.iteration(), 0);
        for node in [u0, u1, d] {
            assert_eq!(p.prox_leq(node), fresh.prox_leq(node));
            assert_eq!(p.visited(node), fresh.visited(node));
        }
        // Different γ: buffers recycled, reseeded.
        let p = Propagation::attach(&g, 2.0, u0, p.detach());
        let fresh = Propagation::new(&g, 2.0, u0);
        assert_eq!(p.iteration(), 0);
        assert_eq!(p.bound_beyond(), fresh.bound_beyond());
        for node in [u0, u1, d] {
            assert_eq!(p.prox_leq(node), fresh.prox_leq(node));
        }
    }

    #[test]
    fn rebase_carries_warmth_onto_an_appended_graph() {
        // The same base graph built twice: once alone, once with an
        // appended (unreachable) document + user. Node ids of the base
        // prefix coincide, and nothing old points at the appendix —
        // exactly the detached-delta contract.
        let build_base = |extend: bool| {
            let mut forest = Forest::new();
            let t = forest.add_document(DocBuilder::new("doc"));
            let t2 = extend.then(|| forest.add_document(DocBuilder::new("appendix")));
            let mut g = GraphBuilder::new(forest);
            let u0 = g.add_user();
            let u1 = g.add_user();
            let d = g.register_tree(t);
            g.add_edge(d, u0, EdgeKind::PostedBy, 1.0);
            g.add_edge(u0, u1, EdgeKind::Social, 0.3);
            if let Some(t2) = t2 {
                let u2 = g.add_user();
                let d2 = g.register_tree(t2);
                g.add_edge(d2, u2, EdgeKind::PostedBy, 1.0);
                g.add_edge(u2, u1, EdgeKind::Social, 0.8);
            }
            (g.build(), u0, u1, d)
        };
        let (old, u0, u1, d) = build_base(false);
        let (new, ..) = build_base(true);

        let mut warm = Propagation::new(&old, 1.5, u0);
        let mut cold = Propagation::new(&new, 1.5, u0);
        for _ in 0..3 {
            warm.step();
            cold.step();
        }
        let mut state = warm.detach();
        assert!(state.rebase(&old, &new, 1.5), "appended graph must accept the rebase");
        assert!(state.warm_for(&new, 1.5));
        let mut warm = Propagation::attach(&new, 1.5, u0, state);
        assert_eq!(warm.iteration(), 3, "warmth survives the rebase");
        for _ in 0..5 {
            assert_eq!(warm.step().to_vec(), cold.step());
            for node in [u0, u1, d] {
                assert_eq!(warm.prox_leq(node), cold.prox_leq(node));
            }
            assert_eq!(warm.border_mass(), cold.border_mass());
            assert_eq!(warm.bound_beyond(), cold.bound_beyond());
        }

        // A state that was never warm for `from` refuses the rebase.
        let mut stale = Propagation::new(&old, 2.0, u0).detach();
        assert!(!stale.rebase(&old, &new, 1.5), "γ mismatch must invalidate");
        assert!(!stale.warm_for(&new, 1.5));
        // Shrinking is refused too (rebase only ever appends).
        let mut backwards = Propagation::new(&new, 1.5, u0).detach();
        assert!(!backwards.rebase(&new, &old, 1.5));
    }

    #[test]
    fn step_into_reuses_caller_buffer() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 2.0, u0);
        let mut newly = Vec::new();
        p.step_into(1, false, &mut newly);
        assert_eq!(newly, vec![u1, d]);
        let cap = newly.capacity();
        p.step_into(1, false, &mut newly);
        assert!(newly.is_empty());
        assert_eq!(newly.capacity(), cap, "buffer must be reused, not reallocated");
    }

    #[test]
    fn parallel_cutoff_defaults_to_the_constant() {
        // The override is read once per process, so the positive case
        // (setting the variable) lives in the CI smoke run; here we pin
        // the default and the parse rules via the same code path.
        if std::env::var_os("S3_PARALLEL_CUTOFF").is_none() {
            assert_eq!(Propagation::parallel_cutoff(), Propagation::PARALLEL_CUTOFF);
        }
    }

    #[test]
    fn step_wrappers_reuse_the_state_buffer() {
        let (g, u0, _, _) = small();
        let mut p = Propagation::new(&g, 2.0, u0);
        let first_ptr = p.step().as_ptr();
        // Later steps return the same backing buffer (capacity ≥ 2 after
        // the first step, and nothing ever outgrows it on this graph).
        assert_eq!(p.step().as_ptr(), first_ptr);
        assert_eq!(p.step_parallel(2).as_ptr(), first_ptr);
    }

    /// Pins the documented reduction order: per-target accumulation in
    /// `x_next` happens in emission order (trees ascending, then singles
    /// in frontier order; CSR edge order within a unit). A node fed by
    /// three sources with weights that expose rounding must equal the
    /// explicit left-to-right sum, **bit for bit** — this is the contract
    /// engine parity relies on, so any layout change that reorders the
    /// additions fails here before it fails a parity suite.
    #[test]
    fn reduction_order_is_emission_order() {
        // u0 —w[i]→ u{i+1} —v[i]→ t: three two-hop chains meeting at t.
        let w = [0.1, 0.2, 0.3];
        let v = [0.7, 0.11, 0.13];
        let forest = Forest::new();
        let mut gb = GraphBuilder::new(forest);
        let u0 = gb.add_user();
        let mids = [gb.add_user(), gb.add_user(), gb.add_user()];
        let t = gb.add_user();
        for i in 0..3 {
            gb.add_edge(u0, mids[i], EdgeKind::Social, w[i]);
        }
        for i in 0..3 {
            gb.add_edge(mids[i], t, EdgeKind::Social, v[i]);
        }
        let g = gb.build();

        let gamma = 1.7;
        let mut p = Propagation::new(&g, gamma, u0);
        p.step();
        p.step();

        // Re-derive prox≤2(t) with the exact documented operation order:
        // normalization sums in CSR order, ρ·w per edge, per-target adds
        // in frontier (= ascending id) order, Cγ/γ² via the incremental
        // power.
        let c_gamma = (gamma - 1.0) / gamma;
        let w0: f64 = w.iter().sum(); // u0's CSR slice is w[0], w[1], w[2]
        let mut sum_t = 0.0;
        for i in 0..3 {
            let x1 = (1.0 / w0) * w[i];
            // mids[i]'s only out edge is v[i] (social edges have no
            // inverse), so its neighborhood weight is v[i] alone.
            let wi: f64 = [v[i]].iter().sum();
            sum_t += (x1 / wi) * v[i];
        }
        let gamma_pow = (1.0 * gamma) * gamma;
        let expected = sum_t * (c_gamma / gamma_pow);
        assert_eq!(
            p.prox_leq(t).to_bits(),
            expected.to_bits(),
            "sequential reduction order must match the documented emission order"
        );

        // The 2-worker parallel merge (chunk order = unit order here)
        // reproduces the same bits on this topology.
        let mut par = Propagation::new(&g, gamma, u0);
        par.step_parallel_forced(2);
        par.step_parallel_forced(2);
        assert_eq!(par.prox_leq(t).to_bits(), expected.to_bits());
    }
}
