//! Proximity propagation: the paper's `borderProx` iteration (§5.2),
//! computing the concrete social proximity of §3.4 exactly.
//!
//! # Semantics
//!
//! The concrete proximity (Definition 3.3 instantiated in §3.4) is
//!
//! ```text
//! prox(u, b) = Cγ · Σ_{p ∈ u⇝b} prox→(p) / γ^|p|,    Cγ = (γ−1)/γ
//! ```
//!
//! where `u⇝b` ranges over *all* social paths — chains of network edges in
//! which consecutive edges meet inside a vertical neighborhood — and
//! `prox→(p)` is the product of the *normalized* edge weights along `p`
//! (§2.5: each edge's weight is divided by `W(neigh(n))`, the total weight
//! leaving the vertical neighborhood of the node `n` the path arrived at).
//!
//! # Algorithm
//!
//! Let `x_j(v)` be the total normalized-weight mass of paths of length `j`
//! from the seeker that end **exactly at** node `v`. One step maps
//! `x_j → x_{j+1}`:
//!
//! 1. emission density `ρ(n) = x_j(n) / W(neigh(n))` for every border node;
//! 2. per tree, `emit(m) = Σ_{n : m ∈ neigh(n)} ρ(n)`, computed with an
//!    ancestor prefix pass plus a subtree suffix pass (O(tree));
//! 3. for every network edge `e: m → t`, `x_{j+1}(t) += emit(m) · w(e)`.
//!
//! The accumulated proximity to a node is then
//! `prox≤n(u, b) = Σ_{v ∈ neigh(b) ∪ {b}} acc(v)` with
//! `acc(v) = Cγ Σ_{j≤n} x_j(v)/γ^j`, maintained incrementally (`acc_nb`).
//!
//! # Attenuation bound
//!
//! Normalized out-weights of a neighborhood sum to exactly 1 (0 at sinks),
//! so the border mass `M_j = Σ_v x_j(v)` never increases, giving
//! `prox − prox≤n ≤ M_n / γ^{n+1}` ([`Propagation::bound_beyond`]) — the
//! paper's `B>n_prox`, which tends to 0 and drives S3k's stop condition.
//!
//! # Reuse across queries
//!
//! A `Propagation` owns O(|graph|) buffers. Building them per query is the
//! dominant allocation cost of a search, so the serving layer reuses one
//! `Propagation` per worker: [`Propagation::reset`] rewinds to a fresh
//! seeker without reallocating, and [`Propagation::step_into`] appends the
//! newly-reached nodes to a caller-owned buffer. The sequential explore
//! path performs no steady-state allocation; the parallel path allocates
//! only per-worker result buffers (amortized by the spawn cutoff).
//!
//! Two lifecycle refinements keep the per-query fixed cost proportional to
//! the search extent rather than the graph:
//!
//! * **Sparse reset** — every write to the `x`/`acc`/`acc_nb`/`visited`
//!   buffers is journaled (visited nodes in first-visit order, plus the
//!   trees whose `acc_nb` ranges were refreshed), so [`Propagation::reset`]
//!   clears only the entries a search actually touched: O(touched), not
//!   O(|graph|).
//! * **Resume** — the propagation depends only on (graph, γ, seeker), never
//!   on the query, and `prox≤n` is monotone in `n`. A propagation left at
//!   step `n` can therefore serve a later query from the same seeker by
//!   *continuing* instead of resetting; [`Propagation::visited_journal`]
//!   replays the discovery seeds (the concatenation of every step's
//!   newly-visited list) and [`Propagation::frontier_closed`] restores the
//!   driver's frontier flag. [`Propagation::detach`] /
//!   [`Propagation::attach`] move the buffers through a graph-independent
//!   [`PropagationState`] so a serving layer can pool warm propagations
//!   keyed by seeker.

use crate::graph::SocialGraph;
use crate::node::{NodeId, NodeKind};
use s3_doc::TreeId;

/// Incremental all-paths proximity evaluation from one seeker: a graph
/// borrow over a [`PropagationState`] (the buffers detach for pooling via
/// [`Propagation::detach`] / [`Propagation::attach`]).
#[derive(Debug)]
pub struct Propagation<'g> {
    graph: &'g SocialGraph,
    s: PropagationState,
}

/// The graph-independent buffers of a [`Propagation`], detached so a
/// serving layer can pool warm propagations without borrowing the graph.
///
/// A default state is empty; [`Propagation::attach`] sizes it for the
/// graph on first use. A detached state remembers which graph and γ it
/// was built for, so `attach` can tell a warm same-graph state (buffers
/// and step preserved — the resume path) from a stale one (buffers
/// recycled, propagation reseeded).
#[derive(Debug, Default)]
pub struct PropagationState {
    /// Identity of the graph the buffers are sized and filled for (the
    /// graph's address; 0 = never attached / invalidated).
    graph_tag: usize,
    gamma: f64,
    c_gamma: f64,
    /// `γ^n`, maintained by one multiply per step (no `powi` on the
    /// per-candidate bound path).
    gamma_pow: f64,
    /// Number of explore steps done so far (`n`).
    step: u32,
    /// The node the propagation was seeded from.
    seeker: NodeId,
    /// Border mass `x_n(v)` per node.
    x: Vec<f64>,
    /// Nodes with `x > 0`.
    frontier: Vec<u32>,
    /// `Cγ Σ_{j≤n} x_j(v)/γ^j` per node.
    acc: Vec<f64>,
    /// `Σ_{v' ∈ neigh(v)} acc(v')` per node: the bounded proximity
    /// `prox≤n(seeker, v)`.
    acc_nb: Vec<f64>,
    /// `M_n`: total border mass.
    border_mass: f64,
    visited: Vec<bool>,
    /// Did some step produce no newly-visited node? Absorbing: the visited
    /// set can never grow again afterwards.
    frontier_closed: bool,
    /// Journal of visited nodes in first-visit order: the seeker, then
    /// every step's newly-visited list. Exactly the nodes with `x`, `acc`
    /// or `visited` writes — what [`Propagation::reset`] must clear, and
    /// what a resumed search replays through discovery.
    touched: Vec<u32>,
    /// Journal of trees whose `acc_nb` range was refreshed, deduplicated
    /// via `tree_touched`.
    touched_trees: Vec<TreeId>,
    /// Per-tree membership flag for `touched_trees`.
    tree_touched: Vec<bool>,
    /// Scratch: next border mass.
    x_next: Vec<f64>,
    /// Scratch: sequential-path `(target, Δmass)` contributions.
    emit_buf: Vec<(u32, f64)>,
    /// Scratch: frontier being assembled for the next step.
    frontier_next: Vec<u32>,
    /// Scratch: active trees of the current frontier, deduplicated.
    unit_trees: Vec<TreeId>,
    /// Scratch: active user/tag nodes of the current frontier.
    unit_singles: Vec<u32>,
    /// Scratch: per-tree prefix/suffix passes.
    tree_scratch: TreeScratch,
}

impl PropagationState {
    /// An empty state: the first [`Propagation::attach`] allocates.
    pub fn new() -> Self {
        PropagationState::default()
    }

    /// Number of explore steps the detached propagation had performed.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// The seeker the detached propagation is warm for (meaningful only
    /// after at least one attach).
    pub fn seeker(&self) -> NodeId {
        self.seeker
    }

    /// Does this state hold a warm propagation for `graph` at damping
    /// `gamma` (i.e. would [`Propagation::attach`] preserve it)?
    pub fn warm_for(&self, graph: &SocialGraph, gamma: f64) -> bool {
        self.graph_tag == graph_tag(graph)
            && self.gamma == gamma
            && self.x.len() == graph.num_nodes()
            && self.tree_touched.len() == graph.forest().num_trees()
    }

    /// Forget what this state was warm for: the next
    /// [`Propagation::attach`] rebuilds it from scratch (reusing only the
    /// allocations). The serving layer calls this whenever a state loses
    /// its seeker binding or epoch stamp, so a later attach can never
    /// silently resume work done under an invalidated configuration.
    pub fn invalidate(&mut self) {
        self.graph_tag = 0;
    }

    /// Re-home a state warm for `from` onto `to`, **without** losing its
    /// warmth: per-node buffers grow (zero-filled) to the new graph's
    /// sizes and the identity tag moves, so the next
    /// [`Propagation::attach`] on `to` resumes instead of reseeding.
    ///
    /// Caller contract (live ingestion's *detached* deltas): `to` must be
    /// `from` plus strictly appended nodes and trees — every
    /// previously-existing node keeps its id, out-edges, weights and
    /// neighborhood weight, and no appended node is reachable from any
    /// previously-visited one. Under that contract the propagation's past
    /// *and future* on `to` coincide with what they would have been on
    /// `from`, step for step. Returns `false` (and invalidates the state)
    /// when the state was not warm for `(from, gamma)` or the sizes
    /// shrink; resuming it would then be unsound.
    pub fn rebase(&mut self, from: &SocialGraph, to: &SocialGraph, gamma: f64) -> bool {
        if !self.warm_for(from, gamma)
            || self.x.len() > to.num_nodes()
            || self.tree_touched.len() > to.forest().num_trees()
        {
            self.invalidate();
            return false;
        }
        let n = to.num_nodes();
        for buf in [&mut self.x, &mut self.x_next, &mut self.acc, &mut self.acc_nb] {
            buf.resize(n, 0.0);
        }
        self.visited.resize(n, false);
        self.tree_touched.resize(to.forest().num_trees(), false);
        self.graph_tag = graph_tag(to);
        true
    }
}

/// The identity tag stored in a detached state: the graph's address.
/// Address reuse after a graph is dropped could collide, but a state is
/// only ever re-attached by the owner that detached it (the serving
/// layer's pool, keyed per engine), matching the `std::ptr::eq` contract
/// the search driver already applies to reused propagations.
fn graph_tag(graph: &SocialGraph) -> usize {
    std::ptr::from_ref(graph) as usize
}

/// Reusable per-tree buffers for the ancestor/subtree aggregation passes.
#[derive(Debug, Default)]
struct TreeScratch {
    rho: Vec<f64>,
    anc: Vec<f64>,
    sub: Vec<f64>,
    trees: Vec<TreeId>,
}

/// One emission work item: a whole active tree, or a single user/tag node.
#[derive(Clone, Copy)]
enum Unit {
    Tree(TreeId),
    Single(u32),
}

impl<'g> Propagation<'g> {
    /// Start a propagation from `seeker` with damping `gamma > 1`.
    pub fn new(graph: &'g SocialGraph, gamma: f64, seeker: NodeId) -> Self {
        Propagation::attach(graph, gamma, seeker, PropagationState::new())
    }

    /// Bind a detached [`PropagationState`] back to a graph. A state warm
    /// for `(graph, gamma)` keeps its buffers and step count: if its
    /// seeker equals `seeker` the propagation is ready to *resume*;
    /// otherwise it is [`Self::reset`] (sparse, O(touched)). Any other
    /// state — fresh, or from a different graph or damping — has its
    /// buffers recycled and the propagation is seeded from scratch.
    pub fn attach(
        graph: &'g SocialGraph,
        gamma: f64,
        seeker: NodeId,
        state: PropagationState,
    ) -> Self {
        assert!(gamma > 1.0, "the proximity series requires γ > 1");
        let warm = state.warm_for(graph, gamma);
        let mut engine = Propagation { graph, s: state };
        if warm {
            if engine.s.seeker != seeker {
                engine.reset(seeker);
            }
        } else {
            // Stale or fresh state: size every per-node buffer for this
            // graph (reusing capacity where the vectors are large enough)
            // and start cold.
            engine.s.gamma = gamma;
            engine.s.c_gamma = (gamma - 1.0) / gamma;
            let n = graph.num_nodes();
            let s = &mut engine.s;
            for buf in [&mut s.x, &mut s.x_next, &mut s.acc, &mut s.acc_nb] {
                buf.clear();
                buf.resize(n, 0.0);
            }
            s.visited.clear();
            s.visited.resize(n, false);
            s.tree_touched.clear();
            s.tree_touched.resize(graph.forest().num_trees(), false);
            s.frontier.clear();
            s.frontier_next.clear();
            s.touched.clear();
            s.touched_trees.clear();
            engine.rewind(seeker);
        }
        engine
    }

    /// Detach the buffers for pooling; [`Self::attach`] restores them.
    pub fn detach(self) -> PropagationState {
        let mut state = self.s;
        state.graph_tag = graph_tag(self.graph);
        state
    }

    /// Rewind to step 0 from a (possibly different) seeker, clearing only
    /// the journaled entries: O(touched nodes + touched tree sizes), not
    /// O(|graph|), and no allocation regardless of the previous search's
    /// extent. Equivalent to `Propagation::new(graph, gamma, seeker)`.
    pub fn reset(&mut self, seeker: NodeId) {
        // `x_next` is all-zero between steps (`advance` zeroes the old
        // border before swapping), so only the journaled buffers hold
        // residue: x/acc/visited at visited nodes, acc_nb at visited
        // users/tags and over every refreshed tree's full node range.
        for &v in &self.s.touched {
            let v = v as usize;
            self.s.x[v] = 0.0;
            self.s.acc[v] = 0.0;
            self.s.acc_nb[v] = 0.0;
            self.s.visited[v] = false;
        }
        self.s.touched.clear();
        for &tree in &self.s.touched_trees {
            let range = self.graph.tree_node_range(tree).expect("journaled tree registered");
            self.s.acc_nb[range].fill(0.0);
            self.s.tree_touched[tree.index()] = false;
        }
        self.s.touched_trees.clear();
        self.s.frontier.clear();
        self.rewind(seeker);
    }

    /// Reinstall the step-0 invariants and seed `seeker` (shared by
    /// [`Self::reset`] and the cold [`Self::attach`] path; callers have
    /// already cleared the per-node buffers and journals).
    fn rewind(&mut self, seeker: NodeId) {
        self.s.step = 0;
        self.s.gamma_pow = 1.0;
        self.s.border_mass = 1.0;
        self.s.frontier_closed = false;
        self.s.seeker = seeker;
        self.seed(seeker);
    }

    /// Install the seeker's initial mass (the empty path, prox→ = 1).
    fn seed(&mut self, seeker: NodeId) {
        self.s.x[seeker.index()] = 1.0;
        self.s.visited[seeker.index()] = true;
        self.s.acc[seeker.index()] = self.s.c_gamma;
        self.s.frontier.push(seeker.0);
        self.s.touched.push(seeker.0);
        let frontier = std::mem::take(&mut self.s.frontier);
        self.refresh_acc_nb(&frontier);
        self.s.frontier = frontier;
    }

    /// The damping factor γ.
    pub fn gamma(&self) -> f64 {
        self.s.gamma
    }

    /// The graph this propagation's buffers are sized for.
    pub fn graph(&self) -> &'g SocialGraph {
        self.graph
    }

    /// Number of steps performed.
    pub fn iteration(&self) -> u32 {
        self.s.step
    }

    /// The node this propagation was seeded from.
    pub fn seeker(&self) -> NodeId {
        self.s.seeker
    }

    /// `M_n`, the current total border mass.
    pub fn border_mass(&self) -> f64 {
        self.s.border_mass
    }

    /// Has this node ever carried border mass?
    pub fn visited(&self, node: NodeId) -> bool {
        self.s.visited[node.index()]
    }

    /// Every visited node in first-visit order: the seeker, then each
    /// step's newly-visited list in turn — exactly the sequence a search
    /// driver fed to discovery while this propagation advanced, which is
    /// what lets a resumed same-seeker search replay discovery in the
    /// original admission order.
    pub fn visited_journal(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.s.touched.iter().map(|&v| NodeId(v))
    }

    /// Number of nodes the propagation has written to (the cost driver of
    /// [`Self::reset`]).
    pub fn touched_count(&self) -> usize {
        self.s.touched.len()
    }

    /// Has some step produced no newly-visited node? Once true the
    /// visited set can never grow again (closure is absorbing), so the
    /// search's undiscovered-document threshold collapses to 0.
    pub fn frontier_closed(&self) -> bool {
        self.s.frontier_closed
    }

    /// `prox≤n(seeker, node)`: proximity over the paths explored so far.
    pub fn prox_leq(&self, node: NodeId) -> f64 {
        self.s.acc_nb[node.index()]
    }

    /// `B>n`: a bound on `prox − prox≤n` valid for **every** node
    /// simultaneously (DESIGN.md §3.2): `M_n / γ^{n+1}`. `γ^n` is carried
    /// incrementally (one multiply per [`Self::step_into`]), so evaluating
    /// the bound per candidate costs one divide, not a `powi`.
    pub fn bound_beyond(&self) -> f64 {
        self.s.border_mass / (self.s.gamma_pow * self.s.gamma)
    }

    /// An upper bound on the full proximity to `node`.
    pub fn prox_upper(&self, node: NodeId) -> f64 {
        (self.prox_leq(node) + self.bound_beyond()).min(1.0)
    }

    /// Run one explore step (Algorithm 3's `ExploreStep`, in `borderProx`
    /// form). Returns the nodes that received border mass for the first
    /// time.
    pub fn step(&mut self) -> Vec<NodeId> {
        let mut newly = Vec::new();
        self.step_into(1, false, &mut newly);
        newly
    }

    /// Parallel variant: the emission work is split over `threads` workers
    /// (§5.2 reports ~2× with 8 threads); the merge stays sequential. The
    /// result is bit-for-bit independent of `threads` up to floating-point
    /// addition order within a target node, and set-wise identical.
    ///
    /// Worker threads are spawned per step; when the frontier is small the
    /// spawn cost dominates, so emission falls back to sequential below
    /// [`Self::PARALLEL_CUTOFF`] emission units (see EXPERIMENTS.md for the
    /// measured crossover).
    pub fn step_parallel(&mut self, threads: usize) -> Vec<NodeId> {
        let mut newly = Vec::new();
        self.step_into(threads.max(1), false, &mut newly);
        newly
    }

    /// Like [`Self::step_parallel`] but fans out regardless of the cutoff.
    /// For tests and benchmarks of the parallel path itself.
    pub fn step_parallel_forced(&mut self, threads: usize) -> Vec<NodeId> {
        let mut newly = Vec::new();
        self.step_into(threads.max(1), true, &mut newly);
        newly
    }

    /// Allocation-free step: `newly` is cleared, then filled with the nodes
    /// that received border mass for the first time (in ascending id
    /// order). `threads = 1` is fully sequential; `force_parallel` skips
    /// the [`Self::PARALLEL_CUTOFF`] heuristic.
    pub fn step_into(&mut self, threads: usize, force_parallel: bool, newly: &mut Vec<NodeId>) {
        newly.clear();
        self.collect_units();
        let units = self.s.unit_trees.len() + self.s.unit_singles.len();
        let fan_out =
            threads > 1 && units >= 2 && (force_parallel || units >= Self::PARALLEL_CUTOFF);
        if fan_out {
            let results = self.emit_parallel(threads);
            for batch in &results {
                self.merge(batch);
            }
        } else {
            // Move the scratch out so `emit_unit` can borrow `self`
            // immutably while writing into it; hand it back afterwards.
            let mut buf = std::mem::take(&mut self.s.emit_buf);
            let mut scratch = std::mem::take(&mut self.s.tree_scratch);
            buf.clear();
            for i in 0..self.s.unit_trees.len() {
                self.emit_unit(Unit::Tree(self.s.unit_trees[i]), &mut scratch, &mut buf);
            }
            for i in 0..self.s.unit_singles.len() {
                self.emit_unit(Unit::Single(self.s.unit_singles[i]), &mut scratch, &mut buf);
            }
            self.merge(&buf);
            self.s.emit_buf = buf;
            self.s.tree_scratch = scratch;
        }
        self.advance(newly);
    }

    /// Minimum number of emission units (active trees + active users/tags)
    /// before a parallel step actually fans out. A unit costs on the order
    /// of 100ns, while spawning the scoped workers costs ~100µs per step;
    /// the fan-out only amortizes once a step carries tens of thousands of
    /// units (the paper's million-node instances; see EXPERIMENTS.md).
    pub const PARALLEL_CUTOFF: usize = 32_768;

    /// Fill `unit_trees`/`unit_singles` with this step's emission units.
    fn collect_units(&mut self) {
        self.s.unit_trees.clear();
        self.s.unit_singles.clear();
        for &v in &self.s.frontier {
            match self.graph.kind(NodeId(v)) {
                NodeKind::User(_) | NodeKind::Tag(_) => self.s.unit_singles.push(v),
                NodeKind::Frag(f) => self.s.unit_trees.push(self.graph.forest().tree_of(f)),
            }
        }
        self.s.unit_trees.sort_unstable();
        self.s.unit_trees.dedup();
    }

    /// Emit one unit's `(target, Δmass)` contributions into `out`.
    fn emit_unit(&self, unit: Unit, scratch: &mut TreeScratch, out: &mut Vec<(u32, f64)>) {
        match unit {
            Unit::Single(v) => {
                let node = NodeId(v);
                let w = self.graph.neighborhood_weight(node);
                if w <= 0.0 {
                    return;
                }
                let rho = self.s.x[v as usize] / w;
                for (target, _, ew) in self.graph.out_edges(node) {
                    out.push((target.0, rho * ew));
                }
            }
            Unit::Tree(tree) => {
                let range = self.graph.tree_node_range(tree).expect("active tree registered");
                let forest = self.graph.forest();
                let doc_range = forest.tree_range(tree);
                let len = range.len();
                let base = range.start;
                let first_doc = doc_range.start;
                // ρ per tree node.
                let rho = &mut scratch.rho;
                rho.clear();
                rho.resize(len, 0.0);
                for (i, r) in rho.iter_mut().enumerate() {
                    let node = base + i;
                    let w = self.graph.neighborhood_weight(NodeId(node as u32));
                    if w > 0.0 {
                        *r = self.s.x[node] / w;
                    }
                }
                // emit(m) = Σ_{n : m ∈ neigh(n)} ρ(n)
                //         = (strict-ancestor ρ sum) + (subtree ρ sum incl self).
                let anc = &mut scratch.anc;
                anc.clear();
                anc.resize(len, 0.0);
                let sub = &mut scratch.sub;
                sub.clear();
                sub.extend_from_slice(rho);
                #[allow(clippy::needless_range_loop)] // i indexes three arrays
                for i in 0..len {
                    let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                    if let Some(p) = forest.parent(doc) {
                        let pi = p.index() - first_doc;
                        anc[i] = anc[pi] + rho[pi];
                    }
                }
                for i in (0..len).rev() {
                    let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                    if let Some(p) = forest.parent(doc) {
                        let pi = p.index() - first_doc;
                        sub[pi] += sub[i];
                    }
                }
                for i in 0..len {
                    let emit = anc[i] + sub[i];
                    if emit <= 0.0 {
                        continue;
                    }
                    let node = NodeId((base + i) as u32);
                    for (target, _, ew) in self.graph.out_edges(node) {
                        out.push((target.0, emit * ew));
                    }
                }
            }
        }
    }

    /// Fan the emission units out over `threads` scoped workers; each
    /// returns its own contribution buffer.
    fn emit_parallel(&self, threads: usize) -> Vec<Vec<(u32, f64)>> {
        let units: Vec<Unit> = self
            .s
            .unit_trees
            .iter()
            .copied()
            .map(Unit::Tree)
            .chain(self.s.unit_singles.iter().copied().map(Unit::Single))
            .collect();
        let chunk = units.len().div_ceil(threads);
        let mut results: Vec<Vec<(u32, f64)>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in units.chunks(chunk) {
                let this = &*self;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut scratch = TreeScratch::default();
                    for &u in part {
                        this.emit_unit(u, &mut scratch, &mut out);
                    }
                    out
                }));
            }
            for h in handles {
                results.push(h.join().expect("emission worker panicked"));
            }
        });
        results
    }

    /// Add one contribution batch to `x_next`, tracking which targets went
    /// from zero to positive mass.
    fn merge(&mut self, batch: &[(u32, f64)]) {
        for &(target, dm) in batch {
            if self.s.x_next[target as usize] == 0.0 && dm > 0.0 {
                self.s.frontier_next.push(target);
            }
            self.s.x_next[target as usize] += dm;
        }
    }

    /// Swap in the merged border, advance the iteration counter, update
    /// `acc`, `acc_nb` and the visited set; push first-time nodes to
    /// `newly`.
    fn advance(&mut self, newly: &mut Vec<NodeId>) {
        self.s.frontier_next.sort_unstable();
        self.s.frontier_next.dedup();

        // Swap in the new border; clear the old one.
        for &v in &self.s.frontier {
            self.s.x[v as usize] = 0.0;
        }
        std::mem::swap(&mut self.s.x, &mut self.s.x_next);
        std::mem::swap(&mut self.s.frontier, &mut self.s.frontier_next);
        self.s.frontier_next.clear();
        self.s.step += 1;
        self.s.gamma_pow *= self.s.gamma;

        // Accumulate Cγ·x_n(v)/γ^n and refresh neighborhood sums.
        let factor = self.s.c_gamma / self.s.gamma_pow;
        self.s.border_mass = 0.0;
        let frontier = std::mem::take(&mut self.s.frontier);
        for &v in &frontier {
            let m = self.s.x[v as usize];
            self.s.border_mass += m;
            self.s.acc[v as usize] += m * factor;
            if !self.s.visited[v as usize] {
                self.s.visited[v as usize] = true;
                self.s.touched.push(v);
                newly.push(NodeId(v));
            }
        }
        self.s.frontier_closed |= newly.is_empty();
        self.refresh_acc_nb(&frontier);
        self.s.frontier = frontier;
    }

    /// Recompute `acc_nb` for every node whose neighborhood contains a node
    /// of `touched`: users/tags affect only themselves, fragments affect
    /// their whole tree.
    fn refresh_acc_nb(&mut self, touched: &[u32]) {
        let mut scratch = std::mem::take(&mut self.s.tree_scratch);
        let trees = &mut scratch.trees;
        trees.clear();
        for &v in touched {
            match self.graph.kind(NodeId(v)) {
                NodeKind::User(_) | NodeKind::Tag(_) => {
                    self.s.acc_nb[v as usize] = self.s.acc[v as usize];
                }
                NodeKind::Frag(f) => trees.push(self.graph.forest().tree_of(f)),
            }
        }
        trees.sort_unstable();
        trees.dedup();
        for &tree in trees.iter() {
            if !self.s.tree_touched[tree.index()] {
                self.s.tree_touched[tree.index()] = true;
                self.s.touched_trees.push(tree);
            }
            let range = self.graph.tree_node_range(tree).expect("registered");
            let forest = self.graph.forest();
            let first_doc = forest.tree_range(tree).start;
            let base = range.start;
            let len = range.len();
            let anc = &mut scratch.anc;
            anc.clear();
            anc.resize(len, 0.0);
            let sub = &mut scratch.sub;
            sub.clear();
            sub.extend((0..len).map(|i| self.s.acc[base + i]));
            for i in 0..len {
                let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                if let Some(p) = forest.parent(doc) {
                    let pi = p.index() - first_doc;
                    anc[i] = anc[pi] + self.s.acc[base + pi];
                }
            }
            for i in (0..len).rev() {
                let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                if let Some(p) = forest.parent(doc) {
                    let pi = p.index() - first_doc;
                    sub[pi] += sub[i];
                }
            }
            for i in 0..len {
                self.s.acc_nb[base + i] = anc[i] + sub[i];
            }
        }
        self.s.tree_scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeKind;
    use crate::graph::GraphBuilder;
    use s3_doc::{DocBuilder, Forest};

    /// Two users and a single-node document: u0 —posted— d, u0 —social→ u1.
    fn small() -> (SocialGraph, NodeId, NodeId, NodeId) {
        let mut forest = Forest::new();
        let t = forest.add_document(DocBuilder::new("doc"));
        let mut g = GraphBuilder::new(forest);
        let u0 = g.add_user();
        let u1 = g.add_user();
        let d = g.register_tree(t);
        g.add_edge(d, u0, EdgeKind::PostedBy, 1.0);
        g.add_edge(u0, u1, EdgeKind::Social, 0.3);
        (g.build(), u0, u1, d)
    }

    #[test]
    fn example_3_1_first_step_proximity() {
        // Paper Example 3.1: prox≤1(u0, URI0) = (1/(1+0.3)) / γ · Cγ under
        // our Cγ-normalized series.
        let (g, u0, _u1, d) = small();
        let gamma = 2.0;
        let mut p = Propagation::new(&g, gamma, u0);
        p.step();
        let c_gamma = (gamma - 1.0) / gamma;
        let expected = c_gamma * (1.0 / 1.3) / gamma;
        assert!((p.prox_leq(d) - expected).abs() < 1e-12, "{} vs {expected}", p.prox_leq(d));
    }

    #[test]
    fn empty_path_gives_self_proximity() {
        let (g, u0, u1, _) = small();
        let p = Propagation::new(&g, 2.0, u0);
        assert!((p.prox_leq(u0) - 0.5).abs() < 1e-12); // Cγ = 1/2
        assert_eq!(p.prox_leq(u1), 0.0);
    }

    #[test]
    fn border_mass_never_increases() {
        let (g, u0, _, _) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        let mut last = p.border_mass();
        for _ in 0..6 {
            p.step();
            assert!(p.border_mass() <= last + 1e-12);
            last = p.border_mass();
        }
    }

    #[test]
    fn prox_is_monotone_and_bounded() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        let mut prev = [p.prox_leq(u1), p.prox_leq(d)];
        for _ in 0..10 {
            p.step();
            let cur = [p.prox_leq(u1), p.prox_leq(d)];
            for (a, b) in prev.iter().zip(cur.iter()) {
                assert!(b + 1e-12 >= *a, "prox must be non-decreasing");
                assert!(*b <= 1.0 + 1e-12);
            }
            prev = cur;
        }
    }

    #[test]
    fn bound_beyond_shrinks_to_zero() {
        let (g, u0, _, _) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        let mut prev = p.bound_beyond();
        for _ in 0..20 {
            p.step();
            assert!(p.bound_beyond() <= prev + 1e-12);
            prev = p.bound_beyond();
        }
        assert!(prev < 1e-3);
    }

    #[test]
    fn newly_visited_reported_once() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 2.0, u0);
        let first = p.step();
        // u0's out edges: postedBy⁻ to d and social to u1.
        assert_eq!(first, vec![u1, d].into_iter().collect::<Vec<_>>());
        let second = p.step();
        // Mass flows back to u0 (already visited): nothing new.
        assert!(second.is_empty());
        assert!(p.visited(u0) && p.visited(u1) && p.visited(d));
    }

    #[test]
    fn parallel_step_matches_sequential() {
        let (g, u0, u1, d) = small();
        let mut seq = Propagation::new(&g, 1.5, u0);
        let mut par = Propagation::new(&g, 1.5, u0);
        for _ in 0..6 {
            seq.step();
            par.step_parallel_forced(4);
            for node in [u0, u1, d] {
                assert!((seq.prox_leq(node) - par.prox_leq(node)).abs() < 1e-12);
            }
            assert!((seq.border_mass() - par.border_mass()).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_matches_fresh_propagation() {
        let (g, u0, u1, d) = small();
        // Drive one propagation far from u0, then reset it to u1.
        let mut reused = Propagation::new(&g, 1.5, u0);
        for _ in 0..8 {
            reused.step();
        }
        reused.reset(u1);
        let mut fresh = Propagation::new(&g, 1.5, u1);
        for node in [u0, u1, d] {
            assert_eq!(reused.prox_leq(node), fresh.prox_leq(node));
            assert_eq!(reused.visited(node), fresh.visited(node));
        }
        for _ in 0..6 {
            let a = reused.step();
            let b = fresh.step();
            assert_eq!(a, b);
            for node in [u0, u1, d] {
                assert_eq!(reused.prox_leq(node), fresh.prox_leq(node));
            }
            assert_eq!(reused.border_mass(), fresh.border_mass());
            assert_eq!(reused.bound_beyond(), fresh.bound_beyond());
        }
    }

    #[test]
    fn journal_is_first_visit_order() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 2.0, u0);
        assert_eq!(p.visited_journal().collect::<Vec<_>>(), vec![u0]);
        let newly = p.step();
        assert_eq!(
            p.visited_journal().collect::<Vec<_>>(),
            std::iter::once(u0).chain(newly).collect::<Vec<_>>()
        );
        let before = p.touched_count();
        p.step(); // no new nodes
        assert_eq!(p.touched_count(), before);
        assert_eq!(p.visited_journal().len(), 3);
        assert!([u0, u1, d].iter().all(|&n| p.visited(n)));
    }

    #[test]
    fn frontier_closure_is_absorbing() {
        let (g, u0, _, _) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        assert!(!p.frontier_closed());
        let mut closed_at = None;
        for i in 0..10 {
            let newly = p.step();
            if p.frontier_closed() {
                closed_at.get_or_insert(i);
                assert!(newly.is_empty() || closed_at != Some(i));
            } else {
                assert!(closed_at.is_none(), "closure must be absorbing");
            }
        }
        assert!(closed_at.is_some(), "a 3-node graph closes within 10 steps");
        p.reset(u0);
        assert!(!p.frontier_closed(), "reset reopens the frontier");
    }

    #[test]
    fn incremental_gamma_power_matches_powi() {
        let (g, u0, _, _) = small();
        for gamma in [1.1, 1.5, 2.0, 3.7] {
            let mut p = Propagation::new(&g, gamma, u0);
            for _ in 0..40 {
                p.step();
                let n = p.iteration() as i32;
                let direct = p.border_mass() / gamma.powi(n + 1);
                let rel = if direct == 0.0 {
                    p.bound_beyond().abs()
                } else {
                    ((p.bound_beyond() - direct) / direct).abs()
                };
                assert!(rel < 1e-12, "γ={gamma} n={n}: {} vs {direct}", p.bound_beyond());
            }
        }
    }

    #[test]
    fn detach_attach_preserves_a_warm_same_seeker_propagation() {
        let (g, u0, u1, d) = small();
        let mut warm = Propagation::new(&g, 1.5, u0);
        let mut cold = Propagation::new(&g, 1.5, u0);
        for _ in 0..3 {
            warm.step();
            cold.step();
        }
        let state = warm.detach();
        assert_eq!(state.step(), 3);
        assert_eq!(state.seeker(), u0);
        assert!(state.warm_for(&g, 1.5));
        assert!(!state.warm_for(&g, 2.0), "γ mismatch must not resume");
        let mut warm = Propagation::attach(&g, 1.5, u0, state);
        assert_eq!(warm.iteration(), 3, "same seeker: state preserved");
        for _ in 0..4 {
            let a = warm.step();
            let b = cold.step();
            assert_eq!(a, b);
        }
        for node in [u0, u1, d] {
            assert_eq!(warm.prox_leq(node), cold.prox_leq(node));
        }
        assert_eq!(warm.bound_beyond(), cold.bound_beyond());
    }

    #[test]
    fn attach_with_other_seeker_or_gamma_starts_cold() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 1.5, u0);
        for _ in 0..5 {
            p.step();
        }
        // Same γ, different seeker: sparse reset inside attach.
        let p = Propagation::attach(&g, 1.5, u1, p.detach());
        let fresh = Propagation::new(&g, 1.5, u1);
        assert_eq!(p.iteration(), 0);
        for node in [u0, u1, d] {
            assert_eq!(p.prox_leq(node), fresh.prox_leq(node));
            assert_eq!(p.visited(node), fresh.visited(node));
        }
        // Different γ: buffers recycled, reseeded.
        let p = Propagation::attach(&g, 2.0, u0, p.detach());
        let fresh = Propagation::new(&g, 2.0, u0);
        assert_eq!(p.iteration(), 0);
        assert_eq!(p.bound_beyond(), fresh.bound_beyond());
        for node in [u0, u1, d] {
            assert_eq!(p.prox_leq(node), fresh.prox_leq(node));
        }
    }

    #[test]
    fn rebase_carries_warmth_onto_an_appended_graph() {
        // The same base graph built twice: once alone, once with an
        // appended (unreachable) document + user. Node ids of the base
        // prefix coincide, and nothing old points at the appendix —
        // exactly the detached-delta contract.
        let build_base = |extend: bool| {
            let mut forest = Forest::new();
            let t = forest.add_document(DocBuilder::new("doc"));
            let t2 = extend.then(|| forest.add_document(DocBuilder::new("appendix")));
            let mut g = GraphBuilder::new(forest);
            let u0 = g.add_user();
            let u1 = g.add_user();
            let d = g.register_tree(t);
            g.add_edge(d, u0, EdgeKind::PostedBy, 1.0);
            g.add_edge(u0, u1, EdgeKind::Social, 0.3);
            if let Some(t2) = t2 {
                let u2 = g.add_user();
                let d2 = g.register_tree(t2);
                g.add_edge(d2, u2, EdgeKind::PostedBy, 1.0);
                g.add_edge(u2, u1, EdgeKind::Social, 0.8);
            }
            (g.build(), u0, u1, d)
        };
        let (old, u0, u1, d) = build_base(false);
        let (new, ..) = build_base(true);

        let mut warm = Propagation::new(&old, 1.5, u0);
        let mut cold = Propagation::new(&new, 1.5, u0);
        for _ in 0..3 {
            warm.step();
            cold.step();
        }
        let mut state = warm.detach();
        assert!(state.rebase(&old, &new, 1.5), "appended graph must accept the rebase");
        assert!(state.warm_for(&new, 1.5));
        let mut warm = Propagation::attach(&new, 1.5, u0, state);
        assert_eq!(warm.iteration(), 3, "warmth survives the rebase");
        for _ in 0..5 {
            assert_eq!(warm.step(), cold.step());
            for node in [u0, u1, d] {
                assert_eq!(warm.prox_leq(node), cold.prox_leq(node));
            }
            assert_eq!(warm.border_mass(), cold.border_mass());
            assert_eq!(warm.bound_beyond(), cold.bound_beyond());
        }

        // A state that was never warm for `from` refuses the rebase.
        let mut stale = Propagation::new(&old, 2.0, u0).detach();
        assert!(!stale.rebase(&old, &new, 1.5), "γ mismatch must invalidate");
        assert!(!stale.warm_for(&new, 1.5));
        // Shrinking is refused too (rebase only ever appends).
        let mut backwards = Propagation::new(&new, 1.5, u0).detach();
        assert!(!backwards.rebase(&new, &old, 1.5));
    }

    #[test]
    fn step_into_reuses_caller_buffer() {
        let (g, u0, u1, d) = small();
        let mut p = Propagation::new(&g, 2.0, u0);
        let mut newly = Vec::new();
        p.step_into(1, false, &mut newly);
        assert_eq!(newly, vec![u1, d]);
        let cap = newly.capacity();
        p.step_into(1, false, &mut newly);
        assert!(newly.is_empty());
        assert_eq!(newly.capacity(), cap, "buffer must be reused, not reallocated");
    }

    #[test]
    fn vertical_neighborhood_traversal() {
        // A two-level document: mass entering at the root must exit through
        // edges attached to its descendants (Example 2.3's second edge).
        let mut forest = Forest::new();
        let mut b = DocBuilder::new("doc");
        let leaf = b.child(b.root(), "p");
        let t = forest.add_document(b);
        let mut gb = GraphBuilder::new(forest);
        let u0 = gb.add_user();
        let u1 = gb.add_user();
        let root = gb.register_tree(t);
        let leaf = gb.node_of_frag(gb.forest().resolve(t, leaf)).unwrap();
        gb.add_edge(root, u0, EdgeKind::PostedBy, 1.0);
        // A tagless comment-like edge from the leaf to another doc would do;
        // use hasAuthor-style via a comment posted by u1 on the leaf.
        let g2 = {
            let mut forest2_edgecase = gb; // keep building
            forest2_edgecase.add_edge(leaf, u1, EdgeKind::PostedBy, 1.0);
            forest2_edgecase.build()
        };
        let gamma = 2.0;
        let mut p = Propagation::new(&g2, gamma, u0);
        p.step(); // u0 → root (normalized weight 1)
        p.step(); // root's neighborhood = {root, leaf}: exits via both edges
        let c_gamma = 0.5;
        // Step 1: x(root) = 1.0 (u0 has a single out edge of weight 1).
        // Step 2: W(neigh(root)) = 2 (postedBy from root + postedBy from
        // leaf): each of u0, u1 receives 1·1/2.
        let expected_u1 = c_gamma * 0.5 / gamma.powi(2);
        assert!((p.prox_leq(u1) - expected_u1).abs() < 1e-12);
    }
}
