//! Content components (paper §5.2).
//!
//! "Reachability by such edges [`S3:partOf`, `S3:commentsOn±`,
//! `S3:hasSubject±`] defines a partition of the documents into connected
//! components. … a fragment matches the query keywords iff its component
//! matches it, leading to an efficient pruning procedure."
//!
//! Components are computed once at graph freeze with a union-find; users are
//! singletons (social edges are not content edges).

use crate::node::{NodeId, NodeKind};
use serde::{Deserialize, Serialize};

/// Dense component id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CompId(pub u32);

impl CompId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The frozen partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Components {
    comp_of: Vec<CompId>,
    members: Vec<Vec<NodeId>>,
}

impl Components {
    /// Build the partition: unite each registered tree's node range, then
    /// the endpoints of every content-closure edge.
    pub fn build(
        num_nodes: usize,
        kinds: &[NodeKind],
        tree_ranges: impl Iterator<Item = std::ops::Range<usize>>,
        content_edges: impl Iterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let mut uf = UnionFind::new(num_nodes);
        for range in tree_ranges {
            let root = range.start;
            for i in range {
                uf.union(root, i);
            }
        }
        for (a, b) in content_edges {
            uf.union(a.index(), b.index());
        }
        // Dense relabeling.
        let mut label = vec![u32::MAX; num_nodes];
        let mut comp_of = Vec::with_capacity(num_nodes);
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for i in 0..num_nodes {
            let r = uf.find(i);
            if label[r] == u32::MAX {
                label[r] = members.len() as u32;
                members.push(Vec::new());
            }
            let c = CompId(label[r]);
            comp_of.push(c);
            members[c.index()].push(NodeId(i as u32));
        }
        debug_assert_eq!(kinds.len(), num_nodes);
        Components { comp_of, members }
    }

    /// The component of a node.
    pub fn component_of(&self, node: NodeId) -> CompId {
        self.comp_of[node.index()]
    }

    /// The member nodes of a component (ascending ids).
    pub fn members(&self, comp: CompId) -> &[NodeId] {
        &self.members[comp.index()]
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterate over component ids.
    pub fn iter(&self) -> impl Iterator<Item = CompId> {
        (0..self.members.len() as u32).map(CompId)
    }
}

/// Path-halving union-find.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_eq!(uf.find(3), uf.find(4));
        assert_ne!(uf.find(0), uf.find(3));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(4));
        assert_ne!(uf.find(2), uf.find(0));
    }

    #[test]
    fn build_partitions() {
        // 6 nodes: users 0,1; tree [2..5); tag 5 attached to node 3.
        let kinds = vec![
            NodeKind::User(0),
            NodeKind::User(1),
            NodeKind::Frag(s3_doc::DocNodeId(0)),
            NodeKind::Frag(s3_doc::DocNodeId(1)),
            NodeKind::Frag(s3_doc::DocNodeId(2)),
            NodeKind::Tag(0),
        ];
        let comps = Components::build(
            6,
            &kinds,
            std::iter::once(2..5),
            std::iter::once((NodeId(5), NodeId(3))),
        );
        assert_eq!(comps.component_of(NodeId(2)), comps.component_of(NodeId(4)));
        assert_eq!(comps.component_of(NodeId(5)), comps.component_of(NodeId(3)));
        assert_ne!(comps.component_of(NodeId(0)), comps.component_of(NodeId(1)));
        assert_ne!(comps.component_of(NodeId(0)), comps.component_of(NodeId(2)));
        assert_eq!(comps.len(), 3);
        assert_eq!(comps.members(comps.component_of(NodeId(2))).len(), 4);
    }

    #[test]
    fn empty_graph() {
        let comps = Components::build(0, &[], std::iter::empty(), std::iter::empty());
        assert!(comps.is_empty());
        assert_eq!(comps.len(), 0);
    }
}
