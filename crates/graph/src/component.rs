//! Content components (paper §5.2).
//!
//! "Reachability by such edges [`S3:partOf`, `S3:commentsOn±`,
//! `S3:hasSubject±`] defines a partition of the documents into connected
//! components. … a fragment matches the query keywords iff its component
//! matches it, leading to an efficient pruning procedure."
//!
//! Components are computed once at graph freeze with a union-find; users are
//! singletons (social edges are not content edges).

use crate::node::{NodeId, NodeKind};
use serde::{Deserialize, Serialize};

/// Dense component id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CompId(pub u32);

impl CompId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The frozen partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Components {
    comp_of: Vec<CompId>,
    members: Vec<Vec<NodeId>>,
}

impl Components {
    /// Build the partition: unite each registered tree's node range, then
    /// the endpoints of every content-closure edge.
    pub fn build(
        num_nodes: usize,
        kinds: &[NodeKind],
        tree_ranges: impl Iterator<Item = std::ops::Range<usize>>,
        content_edges: impl Iterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        Components::build_inner(num_nodes, kinds, tree_ranges, content_edges, None)
    }

    /// [`Self::build`] with **stable ids** relative to a previous partition
    /// of a node-prefix of this graph (live ingestion appends nodes, never
    /// renumbers them):
    ///
    /// * the component containing a previous component's **first member**
    ///   keeps that id — so untouched components keep their id, and
    ///   components merged by a new content edge collapse onto the
    ///   smallest id among those they absorbed (first-claimant wins);
    /// * when edge *removal* (tombstone retraction) splits a previous
    ///   component, only the part holding its first member keeps the old
    ///   id; every split-off part receives a fresh id like a component of
    ///   only-new nodes — so side tables keyed by the old id are never
    ///   silently shared by two disjoint node sets;
    /// * a component of only-new or split-off nodes receives the next
    ///   fresh id, in first-member order;
    /// * an old id whose component was merged away (or emptied by
    ///   deletion) stays allocated with an empty member list (ids stay
    ///   dense; `Vec`-indexed side tables keyed by `CompId` never shift).
    ///
    /// Under pure appends the surviving ids are ordered exactly as a
    /// from-scratch [`Self::build`] of the same graph orders its dense ids
    /// (both follow first-member node order); retraction splits may break
    /// that relative order until the next compaction renumbers densely.
    pub fn build_extending(
        prev: &Components,
        num_nodes: usize,
        kinds: &[NodeKind],
        tree_ranges: impl Iterator<Item = std::ops::Range<usize>>,
        content_edges: impl Iterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        assert!(prev.comp_of.len() <= num_nodes, "extension cannot drop nodes");
        Components::build_inner(num_nodes, kinds, tree_ranges, content_edges, Some(prev))
    }

    fn build_inner(
        num_nodes: usize,
        kinds: &[NodeKind],
        tree_ranges: impl Iterator<Item = std::ops::Range<usize>>,
        content_edges: impl Iterator<Item = (NodeId, NodeId)>,
        prev: Option<&Components>,
    ) -> Self {
        let mut uf = UnionFind::new(num_nodes);
        for range in tree_ranges {
            let root = range.start;
            for i in range {
                uf.union(root, i);
            }
        }
        for (a, b) in content_edges {
            uf.union(a.index(), b.index());
        }
        // Relabeling: dense fresh ids, or stable-prefix ids when extending.
        let mut label = vec![u32::MAX; num_nodes];
        let mut num_comps = 0u32;
        if let Some(prev) = prev {
            // Each previous component's *first member* claims its old id
            // for the root it now lives under (a root absorbing several
            // old components keeps the smallest — ids ascend with first
            // members, so ascending-id iteration visits claims in order).
            // A split-off part that lost the first member claims nothing
            // and falls through to a fresh id below: one old id is never
            // shared by two disjoint node sets.
            for (c, members) in prev.members.iter().enumerate() {
                if let Some(&m0) = members.first() {
                    let r = uf.find(m0.index());
                    if label[r] > c as u32 {
                        label[r] = c as u32;
                    }
                }
            }
            num_comps = prev.members.len() as u32;
        }
        let mut comp_of = Vec::with_capacity(num_nodes);
        for i in 0..num_nodes {
            let r = uf.find(i);
            if label[r] == u32::MAX {
                label[r] = num_comps;
                num_comps += 1;
            }
            comp_of.push(CompId(label[r]));
        }
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_comps as usize];
        for (i, &c) in comp_of.iter().enumerate() {
            members[c.index()].push(NodeId(i as u32));
        }
        debug_assert_eq!(kinds.len(), num_nodes);
        Components { comp_of, members }
    }

    /// The component of a node.
    pub fn component_of(&self, node: NodeId) -> CompId {
        self.comp_of[node.index()]
    }

    /// The member nodes of a component (ascending ids).
    pub fn members(&self, comp: CompId) -> &[NodeId] {
        &self.members[comp.index()]
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterate over component ids.
    pub fn iter(&self) -> impl Iterator<Item = CompId> {
        (0..self.members.len() as u32).map(CompId)
    }

    /// Serialize for the durable snapshot format: the component count and
    /// the per-node component ids. Member lists are rebuilt on read (they
    /// are exactly the nodes of each id, in ascending node order), but the
    /// count is stored explicitly because merged-away components keep an
    /// allocated, empty id (see [`Self::build_extending`]).
    pub fn snap_write(&self, out: &mut Vec<u8>) {
        s3_snap::put_usize(out, self.members.len());
        s3_snap::put_usize(out, self.comp_of.len());
        for &c in &self.comp_of {
            s3_snap::put_u32v(out, c.0);
        }
    }

    /// Decode a partition written by [`Self::snap_write`] over a graph of
    /// `num_nodes` nodes. Never panics on malformed input.
    pub fn snap_read(
        r: &mut s3_snap::SnapReader<'_>,
        num_nodes: usize,
    ) -> Result<Self, s3_snap::SnapError> {
        let num_comps = r.usize_v()?;
        let n = r.seq(1)?;
        if n != num_nodes {
            return Err(s3_snap::SnapError::Value("component table length mismatch"));
        }
        if num_comps > n {
            return Err(s3_snap::SnapError::Value("more components than nodes"));
        }
        let mut comp_of = Vec::with_capacity(n);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_comps];
        for i in 0..n {
            let c = r.u32v()?;
            if c as usize >= num_comps {
                return Err(s3_snap::SnapError::Value("component id out of range"));
            }
            comp_of.push(CompId(c));
            members[c as usize].push(NodeId(i as u32));
        }
        Ok(Components { comp_of, members })
    }
}

/// Path-halving union-find.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_eq!(uf.find(3), uf.find(4));
        assert_ne!(uf.find(0), uf.find(3));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(4));
        assert_ne!(uf.find(2), uf.find(0));
    }

    #[test]
    fn build_partitions() {
        // 6 nodes: users 0,1; tree [2..5); tag 5 attached to node 3.
        let kinds = vec![
            NodeKind::User(0),
            NodeKind::User(1),
            NodeKind::Frag(s3_doc::DocNodeId(0)),
            NodeKind::Frag(s3_doc::DocNodeId(1)),
            NodeKind::Frag(s3_doc::DocNodeId(2)),
            NodeKind::Tag(0),
        ];
        let comps = Components::build(
            6,
            &kinds,
            std::iter::once(2..5),
            std::iter::once((NodeId(5), NodeId(3))),
        );
        assert_eq!(comps.component_of(NodeId(2)), comps.component_of(NodeId(4)));
        assert_eq!(comps.component_of(NodeId(5)), comps.component_of(NodeId(3)));
        assert_ne!(comps.component_of(NodeId(0)), comps.component_of(NodeId(1)));
        assert_ne!(comps.component_of(NodeId(0)), comps.component_of(NodeId(2)));
        assert_eq!(comps.len(), 3);
        assert_eq!(comps.members(comps.component_of(NodeId(2))).len(), 4);
    }

    #[test]
    fn empty_graph() {
        let comps = Components::build(0, &[], std::iter::empty(), std::iter::empty());
        assert!(comps.is_empty());
        assert_eq!(comps.len(), 0);
    }

    #[test]
    fn extending_keeps_untouched_ids_and_appends_new_ones() {
        // Base: users 0,1 and tree [2..4) — three components.
        let kinds = vec![
            NodeKind::User(0),
            NodeKind::User(1),
            NodeKind::Frag(s3_doc::DocNodeId(0)),
            NodeKind::Frag(s3_doc::DocNodeId(1)),
        ];
        let base = Components::build(4, &kinds, std::iter::once(2..4), std::iter::empty());
        // Append a new tree [4..5) plus a tag 5 on it: one new component.
        let mut kinds2 = kinds.clone();
        kinds2.push(NodeKind::Frag(s3_doc::DocNodeId(2)));
        kinds2.push(NodeKind::Tag(0));
        let ext = Components::build_extending(
            &base,
            6,
            &kinds2,
            [2..4usize, 4..5].into_iter(),
            std::iter::once((NodeId(5), NodeId(4))),
        );
        for i in 0..4u32 {
            assert_eq!(ext.component_of(NodeId(i)), base.component_of(NodeId(i)));
        }
        assert_eq!(ext.len(), base.len() + 1);
        let new_comp = ext.component_of(NodeId(4));
        assert_eq!(new_comp.index(), base.len(), "fresh ids append after the old ones");
        assert_eq!(ext.members(new_comp), &[NodeId(4), NodeId(5)]);
    }

    #[test]
    fn extending_split_keeps_id_with_first_member_and_mints_fresh_ids() {
        // Three single-node trees bridged into one component, then the
        // bridging edges disappear (tombstoned comment edges): the part
        // holding the first member keeps the id, the others get fresh ids.
        let kinds = vec![
            NodeKind::Frag(s3_doc::DocNodeId(0)),
            NodeKind::Frag(s3_doc::DocNodeId(1)),
            NodeKind::Frag(s3_doc::DocNodeId(2)),
        ];
        let ranges = || [0..1usize, 1..2, 2..3].into_iter();
        let base = Components::build(
            3,
            &kinds,
            ranges(),
            [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))].into_iter(),
        );
        assert_eq!(base.len(), 1);
        let split = Components::build_extending(&base, 3, &kinds, ranges(), std::iter::empty());
        assert_eq!(split.component_of(NodeId(0)), CompId(0), "first member keeps the id");
        assert_ne!(split.component_of(NodeId(1)), CompId(0), "split-off part gets a fresh id");
        assert_ne!(split.component_of(NodeId(2)), split.component_of(NodeId(1)));
        assert_eq!(split.len(), 3);
        assert_eq!(split.members(CompId(0)), &[NodeId(0)]);
    }

    #[test]
    fn extending_split_never_aliases_one_old_id_to_two_parts() {
        // Regression: the old min-over-members relabeling let *both* halves
        // of a split claim the same previous id, silently fusing disjoint
        // node sets under one component. Two two-node components, each
        // split apart: the four resulting parts must all be distinct.
        let kinds = vec![
            NodeKind::Frag(s3_doc::DocNodeId(0)),
            NodeKind::Frag(s3_doc::DocNodeId(1)),
            NodeKind::Frag(s3_doc::DocNodeId(2)),
            NodeKind::Frag(s3_doc::DocNodeId(3)),
        ];
        let ranges = || [0..1usize, 1..2, 2..3, 3..4].into_iter();
        let base = Components::build(
            4,
            &kinds,
            ranges(),
            [(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))].into_iter(),
        );
        assert_eq!(base.len(), 2);
        let split = Components::build_extending(&base, 4, &kinds, ranges(), std::iter::empty());
        let parts: std::collections::HashSet<CompId> =
            (0..4).map(|i| split.component_of(NodeId(i))).collect();
        assert_eq!(parts.len(), 4, "every split part must be its own component");
        assert_eq!(split.component_of(NodeId(0)), base.component_of(NodeId(0)));
        assert_eq!(split.component_of(NodeId(2)), base.component_of(NodeId(2)));
    }

    #[test]
    fn extending_merge_keeps_smallest_id_and_leaves_the_other_empty() {
        // Two single-node trees, then a new comment node bridging them.
        let kinds =
            vec![NodeKind::Frag(s3_doc::DocNodeId(0)), NodeKind::Frag(s3_doc::DocNodeId(1))];
        let base = Components::build(2, &kinds, [0..1usize, 1..2].into_iter(), std::iter::empty());
        assert_eq!(base.len(), 2);
        let mut kinds2 = kinds.clone();
        kinds2.push(NodeKind::Frag(s3_doc::DocNodeId(2)));
        let ext = Components::build_extending(
            &base,
            3,
            &kinds2,
            [0..1usize, 1..2, 2..3].into_iter(),
            [(NodeId(2), NodeId(0)), (NodeId(2), NodeId(1))].into_iter(),
        );
        let survivor = ext.component_of(NodeId(0));
        assert_eq!(survivor, CompId(0), "merge collapses onto the smallest id");
        assert_eq!(ext.component_of(NodeId(1)), survivor);
        assert_eq!(ext.component_of(NodeId(2)), survivor);
        assert_eq!(ext.len(), 2, "the dead id stays allocated");
        assert!(ext.members(CompId(1)).is_empty(), "merged-away component is empty");
        assert_eq!(ext.members(survivor), &[NodeId(0), NodeId(1), NodeId(2)]);
    }
}
