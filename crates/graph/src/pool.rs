//! Persistent worker pool for the parallel explore step.
//!
//! The seed implementation spawned scoped threads on every parallel
//! [`crate::Propagation::step_into`]; at ~100µs per spawn that overhead is
//! what forced `PARALLEL_CUTOFF` into the tens of thousands of emission
//! units, and it made the parallel path allocate every step (thread
//! stacks, join handles, per-worker buffers). [`EmitPool`] keeps the
//! workers parked on a condvar between steps instead: dispatching a step
//! costs two mutex hand-offs and a wakeup, performs **zero heap
//! allocations** in the steady state, and leaves the measured fan-out
//! crossover to the per-unit work itself (see
//! `crates/graph/benches/propagation.rs`).
//!
//! The pool runs *jobs*: a job is a `Fn(usize)` invoked once per worker
//! index, synchronously — [`EmitPool::run`] does not return until every
//! worker has finished, which is what makes handing the closure to the
//! workers as a raw pointer sound (the referent outlives every use). A
//! worker panic is caught, flagged, and re-raised on the caller once the
//! job completes, mirroring the propagate-on-join behaviour of the scoped
//! threads it replaces.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The closure type workers execute, lifetime-erased for parking. Only
/// ever dereferenced while [`EmitPool::run`] blocks the caller, so the
/// pointee is guaranteed live.
type Task = *const (dyn Fn(usize) + Sync + 'static);

/// One dispatched job: the task and the epoch identifying it (workers use
/// the epoch to tell a fresh job from the one they just finished under
/// spurious condvar wakeups).
#[derive(Clone, Copy)]
struct Job {
    task: Task,
    epoch: u64,
}

// SAFETY: the raw task pointer is only dereferenced by workers while the
// dispatching caller is blocked in `run`, which keeps the closure alive
// and requires it to be `Sync` (shared across workers).
unsafe impl Send for Job {}

#[derive(Default)]
struct JobState {
    job: Option<Job>,
    /// Workers still running the current job.
    remaining: usize,
    /// Monotonic job counter.
    epoch: u64,
    /// Some worker panicked during the current job.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    /// Signalled when a job is posted (or shutdown is requested).
    go: Condvar,
    /// Signalled when the last worker finishes a job.
    done: Condvar,
}

/// A fixed-size pool of parked worker threads executing one job at a
/// time. Dropping the pool shuts the workers down and joins them.
pub(crate) struct EmitPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for EmitPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmitPool").field("workers", &self.handles.len()).finish()
    }
}

impl EmitPool {
    /// Spawn `workers` parked threads (the pool's one allocation site,
    /// paid on the first parallel step).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState::default()),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("s3-emit-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning emission worker")
            })
            .collect();
        EmitPool { shared, handles }
    }

    /// Number of workers.
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Execute `task(i)` once per worker index `i` in `0..workers()`,
    /// concurrently, returning when every invocation has finished.
    /// Panics (after the job has fully drained) if any worker panicked.
    pub(crate) fn run(&self, task: &(dyn Fn(usize) + Sync)) {
        // Erase the caller's lifetime; see the `Job` safety comment.
        let task: Task = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), Task>(std::ptr::from_ref(task))
        };
        let mut state = self.shared.state.lock().expect("emit pool poisoned");
        debug_assert!(state.job.is_none(), "run is never re-entered");
        state.epoch += 1;
        state.remaining = self.handles.len();
        state.panicked = false;
        state.job = Some(Job { task, epoch: state.epoch });
        self.shared.go.notify_all();
        while state.job.is_some() {
            state = self.shared.done.wait(state).expect("emit pool poisoned");
        }
        if state.panicked {
            drop(state);
            panic!("emission worker panicked");
        }
    }
}

impl Drop for EmitPool {
    fn drop(&mut self) {
        {
            let mut state = match self.shared.state.lock() {
                Ok(s) => s,
                Err(poisoned) => poisoned.into_inner(),
            };
            state.shutdown = true;
            self.shared.go.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("emit pool poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                match state.job {
                    Some(job) if job.epoch != last_epoch => break job,
                    _ => state = shared.go.wait(state).expect("emit pool poisoned"),
                }
            }
        };
        last_epoch = job.epoch;
        // SAFETY: the dispatcher blocks in `run` until `remaining` hits
        // zero, so the closure behind `task` is alive for this call.
        let task = unsafe { &*job.task };
        let outcome = catch_unwind(AssertUnwindSafe(|| task(index)));
        let mut state = shared.state.lock().expect("emit pool poisoned");
        if outcome.is_err() {
            state.panicked = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            state.job = None;
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_worker_index_each_job() {
        let pool = EmitPool::new(4);
        assert_eq!(pool.workers(), 4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        for _ in 0..50 {
            pool.run(&|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn jobs_see_caller_state_synchronously() {
        let pool = EmitPool::new(3);
        let mut totals = vec![0usize; 3];
        for round in 1..=10usize {
            let cells: Vec<Mutex<usize>> = totals.iter().map(|&t| Mutex::new(t)).collect();
            pool.run(&|i| {
                *cells[i].lock().unwrap() += round;
            });
            for (t, c) in totals.iter_mut().zip(&cells) {
                *t = *c.lock().unwrap();
            }
        }
        assert_eq!(totals, vec![55, 55, 55]);
    }

    #[test]
    fn worker_panic_surfaces_on_the_caller() {
        let pool = EmitPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "the worker panic must propagate");
        // The pool stays serviceable after a panicked job.
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn zero_worker_request_still_provides_one() {
        let pool = EmitPool::new(0);
        assert_eq!(pool.workers(), 1);
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
