//! Naive path-enumeration oracle for social proximity.
//!
//! Implements Definition 3.3 + §3.4 *literally*: enumerate every social path
//! of length ≤ `max_len` (chains of network edges whose consecutive edges
//! meet inside a vertical neighborhood, §2.5), normalize each edge by the
//! weight of its entry neighborhood, and sum `Cγ · prox→(p)/γ^|p|`.
//!
//! Exponential — for tests only. The property tests in this crate and in
//! `s3-core` certify [`crate::Propagation`] against this oracle.

use crate::graph::SocialGraph;
use crate::node::NodeId;

/// `prox≤max_len(from, to)` by explicit path enumeration.
pub fn naive_prox(
    graph: &SocialGraph,
    gamma: f64,
    from: NodeId,
    to: NodeId,
    max_len: usize,
) -> f64 {
    let c_gamma = (gamma - 1.0) / gamma;
    let mut total = 0.0;
    // Empty path: from ⇝ to when they share a vertical neighborhood.
    if graph.same_neighborhood(from, to) {
        total += c_gamma;
    }
    let mut stack: Vec<(NodeId, usize, f64)> = vec![(from, 0, 1.0)];
    while let Some((arrival, len, product)) = stack.pop() {
        if len >= max_len {
            continue;
        }
        let w_nb = graph.neighborhood_weight(arrival);
        if w_nb <= 0.0 {
            continue;
        }
        for m in graph.neighborhood_nodes(arrival) {
            for (target, _, ew) in graph.out_edges(m) {
                let p2 = product * ew / w_nb;
                if graph.same_neighborhood(target, to) {
                    total += c_gamma * p2 / gamma.powi(len as i32 + 1);
                }
                stack.push((target, len + 1, p2));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeKind;
    use crate::graph::GraphBuilder;
    use crate::propagation::Propagation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use s3_doc::{DocBuilder, Forest};

    /// Random small instance: a few users, trees and tags with random edges.
    fn random_instance(seed: u64) -> (SocialGraph, Vec<NodeId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut forest = Forest::new();
        let n_trees = rng.gen_range(1..4usize);
        let mut trees = Vec::new();
        for _ in 0..n_trees {
            let mut b = DocBuilder::new("d");
            let n_extra = rng.gen_range(0..4usize);
            let mut nodes = vec![b.root()];
            for _ in 0..n_extra {
                let parent = nodes[rng.gen_range(0..nodes.len())];
                nodes.push(b.child(parent, "c"));
            }
            trees.push(forest.add_document(b));
        }
        let mut g = GraphBuilder::new(forest);
        let users: Vec<NodeId> = (0..rng.gen_range(2..5usize)).map(|_| g.add_user()).collect();
        let mut all: Vec<NodeId> = users.clone();
        let mut frags: Vec<NodeId> = Vec::new();
        for &t in &trees {
            let root = g.register_tree(t);
            for i in 0..g.forest().tree_len(t) {
                frags.push(NodeId(root.0 + i as u32));
            }
            let poster = users[rng.gen_range(0..users.len())];
            g.add_edge(root, poster, EdgeKind::PostedBy, 1.0);
        }
        all.extend_from_slice(&frags);
        // Random social edges.
        for _ in 0..rng.gen_range(1..6usize) {
            let a = users[rng.gen_range(0..users.len())];
            let b = users[rng.gen_range(0..users.len())];
            if a != b {
                g.add_edge(a, b, EdgeKind::Social, rng.gen_range(0.1..1.0));
            }
        }
        // A tag on a random fragment.
        if rng.gen_bool(0.7) && !frags.is_empty() {
            let tag = g.add_tag();
            all.push(tag);
            let target = frags[rng.gen_range(0..frags.len())];
            g.add_edge(tag, target, EdgeKind::HasSubject, 1.0);
            let author = users[rng.gen_range(0..users.len())];
            g.add_edge(tag, author, EdgeKind::HasAuthor, 1.0);
        }
        (g.build(), all)
    }

    #[test]
    fn propagation_matches_naive_enumeration() {
        for seed in 0..25u64 {
            let (graph, nodes) = random_instance(seed);
            let gamma = 1.0 + (seed % 3) as f64 * 0.5 + 0.25; // 1.25, 1.75, 2.25
            let seeker = nodes[0];
            let max_len = 4;
            let mut engine = Propagation::new(&graph, gamma, seeker);
            for _ in 0..max_len {
                engine.step();
            }
            for &node in &nodes {
                let expected = naive_prox(&graph, gamma, seeker, node, max_len);
                let got = engine.prox_leq(node);
                assert!(
                    (expected - got).abs() < 1e-9,
                    "seed {seed}: prox≤{max_len}({seeker}, {node}) = {got}, naive = {expected}"
                );
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 48,
            ..proptest::prelude::ProptestConfig::default()
        })]

        /// Differential property for the SoA/bitset layout: over random
        /// graphs and random step sequences (sequential and forced-parallel
        /// steps interleaved), the propagation matches the path-enumeration
        /// oracle at every depth, reports newly-visited nodes in ascending
        /// id order, and keeps `visited_journal()` equal to the seeker
        /// followed by every step's newly list in turn — the first-visit
        /// order that resume replay depends on.
        #[test]
        fn step_sequences_match_oracle_and_journal_order(seed in 0u64..2000) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let (graph, nodes) = random_instance(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x0D1F);
            let gamma = 1.0 + (seed % 3) as f64 * 0.5 + 0.25; // 1.25, 1.75, 2.25
            let seeker = nodes[rng.gen_range(0..nodes.len())];
            let depths = rng.gen_range(1..5usize);
            let mut engine = Propagation::new(&graph, gamma, seeker);
            let mut journal = vec![seeker];
            for depth in 1..=depths {
                let newly = if rng.gen_bool(0.5) {
                    engine.step_parallel_forced(rng.gen_range(2..5usize)).to_vec()
                } else {
                    engine.step().to_vec()
                };
                prop_assert!(
                    newly.windows(2).all(|w| w[0].0 < w[1].0),
                    "newly-visited list must be ascending: {:?}",
                    newly
                );
                journal.extend(newly);
                prop_assert_eq!(
                    engine.visited_journal().collect::<Vec<_>>(),
                    journal.clone(),
                    "journal must be the concatenated first-visit order"
                );
                for &node in &nodes {
                    let expected = naive_prox(&graph, gamma, seeker, node, depth);
                    let got = engine.prox_leq(node);
                    prop_assert!(
                        (expected - got).abs() < 1e-9,
                        "seed {}: prox≤{}({}, {}) = {}, naive = {}",
                        seed, depth, seeker, node, got, expected
                    );
                }
            }
        }
    }

    #[test]
    fn naive_upper_bound_holds() {
        // prox≤n + B>n must dominate prox≤(n+5): check on random instances.
        for seed in 0..10u64 {
            let (graph, nodes) = random_instance(seed + 100);
            let gamma = 1.5;
            let seeker = nodes[0];
            let mut short = Propagation::new(&graph, gamma, seeker);
            for _ in 0..2 {
                short.step();
            }
            let bound = short.bound_beyond();
            let mut long = Propagation::new(&graph, gamma, seeker);
            for _ in 0..7 {
                long.step();
            }
            for &node in &nodes {
                assert!(
                    short.prox_leq(node) + bound + 1e-9 >= long.prox_leq(node),
                    "seed {}: B>n violated at {node}",
                    seed + 100
                );
            }
        }
    }
}
