//! The social graph: construction ([`GraphBuilder`]) and the frozen,
//! query-ready form ([`SocialGraph`]).
//!
//! Freezing computes the three derived structures everything else needs:
//! a CSR adjacency over network edges, the vertical-neighborhood weights
//! `W(neigh(n))` of §2.5, and the content components of §5.2.

use crate::component::{CompId, Components};
use crate::edge::EdgeKind;
use crate::node::{NodeId, NodeKind};
use s3_doc::{DocNodeId, Forest, TreeId};

const UNREGISTERED: u32 = u32::MAX;

/// Mutable graph under construction. Nodes of a registered document tree
/// receive contiguous ids in pre-order.
#[derive(Debug)]
pub struct GraphBuilder {
    forest: Forest,
    kinds: Vec<NodeKind>,
    frag_node: Vec<u32>,
    tree_root_node: Vec<u32>,
    edges: Vec<(NodeId, NodeId, EdgeKind, f64)>,
    num_users: u32,
    num_tags: u32,
}

impl GraphBuilder {
    /// Start building over a frozen document forest.
    pub fn new(forest: Forest) -> Self {
        let frag_node = vec![UNREGISTERED; forest.num_nodes()];
        let tree_root_node = vec![UNREGISTERED; forest.num_trees()];
        GraphBuilder {
            forest,
            kinds: Vec::new(),
            frag_node,
            tree_root_node,
            edges: Vec::new(),
            num_users: 0,
            num_tags: 0,
        }
    }

    /// The underlying forest.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// Add a user node.
    pub fn add_user(&mut self) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::User(self.num_users));
        self.num_users += 1;
        id
    }

    /// Add a tag node.
    pub fn add_tag(&mut self) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Tag(self.num_tags));
        self.num_tags += 1;
        id
    }

    /// Register every node of a document tree as a fragment node; returns
    /// the node id of the tree root. Ids are contiguous in pre-order.
    pub fn register_tree(&mut self, tree: TreeId) -> NodeId {
        assert_eq!(self.tree_root_node[tree.index()], UNREGISTERED, "tree registered twice");
        let base = self.kinds.len() as u32;
        self.tree_root_node[tree.index()] = base;
        for doc_idx in self.forest.tree_range(tree) {
            self.frag_node[doc_idx] = self.kinds.len() as u32;
            self.kinds.push(NodeKind::Frag(DocNodeId(doc_idx as u32)));
        }
        NodeId(base)
    }

    /// The graph node of a document node, if its tree was registered.
    pub fn node_of_frag(&self, f: DocNodeId) -> Option<NodeId> {
        match self.frag_node[f.index()] {
            UNREGISTERED => None,
            id => Some(NodeId(id)),
        }
    }

    /// Add a network edge; for invertible kinds the inverse edge is added
    /// automatically (the paper's `s p̄ o ∈ I iff o p s ∈ I`, §2.4).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind, weight: f64) {
        debug_assert!(weight > 0.0 && weight <= 1.0, "edge weight {weight} outside (0,1]");
        self.edges.push((from, to, kind, weight));
        if let Some(inv) = kind.inverse() {
            self.edges.push((to, from, inv, weight));
        }
    }

    /// Number of nodes so far.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Freeze into a [`SocialGraph`].
    pub fn build(self) -> SocialGraph {
        self.build_inner(None)
    }

    /// Freeze into a [`SocialGraph`] whose component ids extend `prev`
    /// stably (see [`Components::build_extending`]) — the live-ingestion
    /// path, where the graph strictly appends nodes to the one `prev`
    /// partitioned and side tables indexed by [`CompId`] must not shift.
    pub fn build_extending(self, prev: &Components) -> SocialGraph {
        self.build_inner(Some(prev))
    }

    fn build_inner(self, prev_comps: Option<&Components>) -> SocialGraph {
        let n = self.kinds.len();
        // CSR over out-edges.
        let mut degree = vec![0u32; n];
        for &(from, _, _, _) in &self.edges {
            degree[from.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let m = self.edges.len();
        let mut targets = vec![NodeId(0); m];
        let mut weights = vec![0.0f64; m];
        let mut ekinds = vec![EdgeKind::Social; m];
        let mut cursor = offsets[..n].to_vec();
        for &(from, to, kind, w) in &self.edges {
            let slot = cursor[from.index()] as usize;
            cursor[from.index()] += 1;
            targets[slot] = to;
            weights[slot] = w;
            ekinds[slot] = kind;
        }

        // Per-node total outgoing weight.
        let mut out_weight = vec![0.0f64; n];
        for i in 0..n {
            let (s, e) = (offsets[i] as usize, offsets[i + 1] as usize);
            out_weight[i] = weights[s..e].iter().sum();
        }

        // W(neigh(n)) (§2.5): for users/tags the node itself; for fragments
        // the ancestor-or-self chain plus the subtree.
        let mut nb_weight = out_weight.clone();
        for tree in self.forest.trees() {
            let base = self.tree_root_node[tree.index()];
            if base == UNREGISTERED {
                continue;
            }
            let range = self.forest.tree_range(tree);
            let first_doc = range.start;
            let len = range.len();
            // anc[i]: sum of out_weight over strict ancestors.
            let mut anc = vec![0.0f64; len];
            // sub[i]: sum of out_weight over the subtree (incl. self).
            let mut sub = vec![0.0f64; len];
            for (i, doc_idx) in range.clone().enumerate() {
                let node = base as usize + i;
                sub[i] = out_weight[node];
                if let Some(p) = self.forest.parent(DocNodeId(doc_idx as u32)) {
                    let pi = p.index() - first_doc;
                    let pnode = base as usize + pi;
                    anc[i] = anc[pi] + out_weight[pnode];
                }
            }
            for i in (0..len).rev() {
                let doc_idx = first_doc + i;
                if let Some(p) = self.forest.parent(DocNodeId(doc_idx as u32)) {
                    let pi = p.index() - first_doc;
                    sub[pi] += sub[i];
                }
            }
            for i in 0..len {
                nb_weight[base as usize + i] = anc[i] + sub[i];
            }
        }

        let tree_ranges =
            self.forest.trees().filter(|t| self.tree_root_node[t.index()] != UNREGISTERED).map(
                |t| {
                    let base = self.tree_root_node[t.index()] as usize;
                    base..base + self.forest.tree_len(t)
                },
            );
        let content_edges = self
            .edges
            .iter()
            .filter(|(_, _, k, _)| k.is_content_closure())
            .map(|&(f, t, _, _)| (f, t));
        let components = match prev_comps {
            Some(prev) => {
                Components::build_extending(prev, n, &self.kinds, tree_ranges, content_edges)
            }
            None => Components::build(n, &self.kinds, tree_ranges, content_edges),
        };

        SocialGraph {
            forest: self.forest,
            kinds: self.kinds,
            frag_node: self.frag_node,
            tree_root_node: self.tree_root_node,
            offsets,
            targets,
            weights,
            ekinds,
            out_weight,
            nb_weight,
            components,
            num_users: self.num_users,
            num_tags: self.num_tags,
        }
    }
}

/// Immutable, query-ready social graph.
#[derive(Debug)]
pub struct SocialGraph {
    forest: Forest,
    kinds: Vec<NodeKind>,
    frag_node: Vec<u32>,
    tree_root_node: Vec<u32>,
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
    ekinds: Vec<EdgeKind>,
    out_weight: Vec<f64>,
    nb_weight: Vec<f64>,
    components: Components,
    num_users: u32,
    num_tags: u32,
}

impl SocialGraph {
    /// The document forest.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// Node kind.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of user nodes.
    pub fn num_users(&self) -> usize {
        self.num_users as usize
    }

    /// Number of tag nodes.
    pub fn num_tags(&self) -> usize {
        self.num_tags as usize
    }

    /// Number of directed network edges (inverses included).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The graph node of a document node, if registered.
    pub fn node_of_frag(&self, f: DocNodeId) -> Option<NodeId> {
        match self.frag_node[f.index()] {
            UNREGISTERED => None,
            id => Some(NodeId(id)),
        }
    }

    /// The document node behind a fragment graph-node.
    pub fn frag_of_node(&self, node: NodeId) -> Option<DocNodeId> {
        self.kinds[node.index()].as_frag()
    }

    /// The tree of a fragment node.
    pub fn tree_of_node(&self, node: NodeId) -> Option<TreeId> {
        self.frag_of_node(node).map(|f| self.forest.tree_of(f))
    }

    /// Graph-node range of a registered tree (contiguous, pre-order).
    pub fn tree_node_range(&self, tree: TreeId) -> Option<std::ops::Range<usize>> {
        match self.tree_root_node[tree.index()] {
            UNREGISTERED => None,
            base => Some(base as usize..base as usize + self.forest.tree_len(tree)),
        }
    }

    /// Outgoing network edges of a node: `(target, kind, weight)`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeKind, f64)> + '_ {
        let (s, e) = (self.offsets[node.index()] as usize, self.offsets[node.index() + 1] as usize);
        (s..e).map(move |i| (self.targets[i], self.ekinds[i], self.weights[i]))
    }

    /// The CSR slices of a node's out edges: `(targets, weights)`,
    /// index-aligned and contiguous. The propagation's emission loop
    /// iterates these zipped so the neighbor multiply-adds run without
    /// per-edge bounds checks (and in the fixed CSR order the reduction
    /// contract documents).
    pub fn out_edge_slices(&self, node: NodeId) -> (&[NodeId], &[f64]) {
        let (s, e) = (self.offsets[node.index()] as usize, self.offsets[node.index() + 1] as usize);
        (&self.targets[s..e], &self.weights[s..e])
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: NodeId) -> usize {
        (self.offsets[node.index() + 1] - self.offsets[node.index()]) as usize
    }

    /// Total weight of the network edges leaving this node.
    pub fn out_weight(&self, node: NodeId) -> f64 {
        self.out_weight[node.index()]
    }

    /// `W(neigh(n))` (§2.5): total weight of network edges leaving any
    /// vertical neighbor of `n` — the denominator of path normalization.
    pub fn neighborhood_weight(&self, node: NodeId) -> f64 {
        self.nb_weight[node.index()]
    }

    /// The vertical neighborhood of a node, as graph nodes (ancestors +
    /// subtree for fragments; the singleton otherwise). Mainly for tests
    /// and the naive oracle — hot paths use contiguous ranges instead.
    pub fn neighborhood_nodes(&self, node: NodeId) -> Vec<NodeId> {
        match self.kinds[node.index()] {
            NodeKind::User(_) | NodeKind::Tag(_) => vec![node],
            NodeKind::Frag(f) => {
                let mut out = Vec::new();
                for anc in self.forest.ancestors(f) {
                    out.push(self.node_of_frag(anc).expect("tree registered"));
                }
                for d in self.forest.fragments(f) {
                    out.push(self.node_of_frag(d).expect("tree registered"));
                }
                out.sort_unstable();
                out
            }
        }
    }

    /// Are `a` and `b` in the same vertical neighborhood (`a = b`, or the
    /// fragment relation holds between them)?
    pub fn same_neighborhood(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        match (self.frag_of_node(a), self.frag_of_node(b)) {
            (Some(fa), Some(fb)) => self.forest.is_vertical_neighbor(fa, fb),
            _ => false,
        }
    }

    /// The content components (§5.2 pruning partition).
    pub fn components(&self) -> &Components {
        &self.components
    }

    /// The documents (trees, identified by their root fragment's tree) whose
    /// nodes lie in `comp`. A registered tree is always wholly contained in
    /// one component, so each tree is yielded exactly once, in id order.
    pub fn component_documents(&self, comp: CompId) -> impl Iterator<Item = TreeId> + '_ {
        self.components
            .members(comp)
            .iter()
            .filter_map(move |&n| self.frag_of_node(n))
            .filter(|&f| self.forest.parent(f).is_none())
            .map(|f| self.forest.tree_of(f))
    }

    /// Number of documents (trees) in a component.
    pub fn component_doc_count(&self, comp: CompId) -> usize {
        self.component_documents(comp).count()
    }

    /// The user nodes in `comp`. Social and authorship edges are not content
    /// edges, so under the §5.2 partition every user is a singleton
    /// component — this yields at most one node, but routers should not
    /// assume that.
    pub fn component_users(&self, comp: CompId) -> impl Iterator<Item = NodeId> + '_ {
        self.components
            .members(comp)
            .iter()
            .copied()
            .filter(move |&n| self.kinds[n.index()].is_user())
    }

    /// All nodes of a given kind predicate (testing convenience).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// Serialize for the durable snapshot format — everything **except**
    /// the forest, which the enclosing snapshot writes once and passes
    /// back into [`Self::snap_read`]. The CSR and the derived weight
    /// tables are stored verbatim (not recomputed) so a loaded graph is
    /// bit-identical to the one that was saved.
    pub fn snap_write(&self, out: &mut Vec<u8>) {
        use s3_snap::{put_f64, put_u32v, put_usize};
        put_u32v(out, self.num_users);
        put_u32v(out, self.num_tags);
        put_usize(out, self.kinds.len());
        for &k in &self.kinds {
            k.snap_write(out);
        }
        put_usize(out, self.frag_node.len());
        for &f in &self.frag_node {
            put_u32v(out, f);
        }
        put_usize(out, self.tree_root_node.len());
        for &t in &self.tree_root_node {
            put_u32v(out, t);
        }
        for &o in &self.offsets {
            put_u32v(out, o);
        }
        put_usize(out, self.targets.len());
        for i in 0..self.targets.len() {
            put_u32v(out, self.targets[i].0);
            put_f64(out, self.weights[i]);
            self.ekinds[i].snap_write(out);
        }
        for i in 0..self.kinds.len() {
            put_f64(out, self.out_weight[i]);
            put_f64(out, self.nb_weight[i]);
        }
        self.components.snap_write(out);
    }

    /// Decode a graph written by [`Self::snap_write`], re-attaching the
    /// separately-persisted `forest`. All cross-references (fragment ↔
    /// node tables, CSR offsets, edge targets, component ids) are
    /// validated; never panics on malformed input.
    pub fn snap_read(
        forest: Forest,
        r: &mut s3_snap::SnapReader<'_>,
    ) -> Result<Self, s3_snap::SnapError> {
        use s3_snap::SnapError;
        let num_users = r.u32v()?;
        let num_tags = r.u32v()?;
        let n = r.seq(1)?;
        let mut kinds = Vec::with_capacity(n);
        let (mut seen_users, mut seen_tags) = (0u32, 0u32);
        for _ in 0..n {
            let k = NodeKind::snap_read(r)?;
            match k {
                NodeKind::User(u) => {
                    if u != seen_users {
                        return Err(SnapError::Value("user payload out of order"));
                    }
                    seen_users += 1;
                }
                NodeKind::Tag(t) => {
                    if t != seen_tags {
                        return Err(SnapError::Value("tag payload out of order"));
                    }
                    seen_tags += 1;
                }
                NodeKind::Frag(f) => {
                    if f.index() >= forest.num_nodes() {
                        return Err(SnapError::Value("fragment id outside the forest"));
                    }
                }
            }
            kinds.push(k);
        }
        if seen_users != num_users || seen_tags != num_tags {
            return Err(SnapError::Value("user/tag counts disagree with node kinds"));
        }
        let nf = r.seq(1)?;
        if nf != forest.num_nodes() {
            return Err(SnapError::Value("frag-node table length mismatch"));
        }
        let mut frag_node = Vec::with_capacity(nf);
        for i in 0..nf {
            let v = r.u32v()?;
            if v != UNREGISTERED {
                let ok =
                    (v as usize) < n && kinds[v as usize] == NodeKind::Frag(DocNodeId(i as u32));
                if !ok {
                    return Err(SnapError::Value("frag-node entry disagrees with node kinds"));
                }
            }
            frag_node.push(v);
        }
        let nt = r.seq(1)?;
        if nt != forest.num_trees() {
            return Err(SnapError::Value("tree-root table length mismatch"));
        }
        let mut tree_root_node = Vec::with_capacity(nt);
        for _ in 0..nt {
            let v = r.u32v()?;
            if v != UNREGISTERED && v as usize >= n {
                return Err(SnapError::Value("tree root node out of range"));
            }
            tree_root_node.push(v);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            offsets.push(r.u32v()?);
        }
        if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SnapError::Value("CSR offsets are not monotone from zero"));
        }
        let m = r.seq(10)?;
        if m != offsets[n] as usize {
            return Err(SnapError::Value("edge count disagrees with CSR offsets"));
        }
        let mut targets = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        let mut ekinds = Vec::with_capacity(m);
        for _ in 0..m {
            let t = r.u32v()?;
            if t as usize >= n {
                return Err(SnapError::Value("edge target out of range"));
            }
            targets.push(NodeId(t));
            let w = r.f64()?;
            if !(w > 0.0 && w <= 1.0) {
                return Err(SnapError::Value("edge weight outside (0,1]"));
            }
            weights.push(w);
            ekinds.push(EdgeKind::snap_read(r)?);
        }
        let mut out_weight = Vec::with_capacity(n);
        let mut nb_weight = Vec::with_capacity(n);
        for _ in 0..n {
            let ow = r.f64()?;
            let nw = r.f64()?;
            if !(ow.is_finite() && nw.is_finite()) {
                return Err(SnapError::Value("non-finite node weight"));
            }
            out_weight.push(ow);
            nb_weight.push(nw);
        }
        let components = Components::snap_read(r, n)?;
        Ok(SocialGraph {
            forest,
            kinds,
            frag_node,
            tree_root_node,
            offsets,
            targets,
            weights,
            ekinds,
            out_weight,
            nb_weight,
            components,
            num_users,
            num_tags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_doc::DocBuilder;

    /// Build the Figure 3 instance of the paper:
    /// users u0..u3, documents URI0 (with children URI0.0 → URI0.0.0 and
    /// URI0.1) and URI1, and tag a0.
    pub(crate) fn figure3() -> (SocialGraph, Vec<NodeId>, Vec<NodeId>, NodeId) {
        let mut forest = Forest::new();
        let mut b0 = DocBuilder::new("doc"); // URI0
        let n00 = b0.child(b0.root(), "sec"); // URI0.0
        let _n000 = b0.child(n00, "p"); // URI0.0.0
        let _n01 = b0.child(b0.root(), "sec"); // URI0.1
        let t0 = forest.add_document(b0);
        let b1 = DocBuilder::new("doc"); // URI1
        let t1 = forest.add_document(b1);

        let mut g = GraphBuilder::new(forest);
        let users: Vec<NodeId> = (0..4).map(|_| g.add_user()).collect();
        let root0 = g.register_tree(t0);
        let uri0 = root0;
        let uri0_0 = NodeId(root0.0 + 1);
        let uri0_0_0 = NodeId(root0.0 + 2);
        let uri0_1 = NodeId(root0.0 + 3);
        let uri1 = g.register_tree(t1);
        let a0 = g.add_tag();

        // Social edges of Figure 3.
        g.add_edge(users[0], users[3], EdgeKind::Social, 0.3);
        g.add_edge(users[1], users[3], EdgeKind::Social, 0.5);
        g.add_edge(users[3], users[2], EdgeKind::Social, 0.5);
        g.add_edge(users[2], users[3], EdgeKind::Social, 0.7);
        // Posting.
        g.add_edge(uri0, users[0], EdgeKind::PostedBy, 1.0);
        g.add_edge(uri1, users[1], EdgeKind::PostedBy, 1.0);
        // URI1 comments on URI0.1; URI0.0 is commented by nothing else.
        g.add_edge(uri1, uri0_1, EdgeKind::CommentsOn, 1.0);
        // Tag a0 on URI0.0.0 by u2.
        g.add_edge(a0, uri0_0_0, EdgeKind::HasSubject, 1.0);
        g.add_edge(a0, users[2], EdgeKind::HasAuthor, 1.0);

        let graph = g.build();
        (graph, users, vec![uri0, uri0_0, uri0_0_0, uri0_1, uri1], a0)
    }

    #[test]
    fn figure3_shape() {
        let (g, users, docs, a0) = figure3();
        assert_eq!(g.num_users(), 4);
        assert_eq!(g.num_tags(), 1);
        assert_eq!(g.num_nodes(), 4 + 5 + 1);
        assert!(g.kind(users[0]).is_user());
        assert!(g.kind(docs[0]).is_frag());
        assert!(g.kind(a0).is_tag());
        // 4 social + (1+1 posted)×2 + 1×2 comments + 2×2 tag edges = 14.
        assert_eq!(g.num_edges(), 14);
    }

    #[test]
    fn inverse_edges_are_materialized() {
        let (g, users, docs, _) = figure3();
        let from_u0: Vec<_> = g.out_edges(users[0]).collect();
        assert!(from_u0.iter().any(|&(t, k, _)| t == docs[0] && k == EdgeKind::PostedByInv));
        assert!(from_u0
            .iter()
            .any(|&(t, k, w)| t == users[3] && k == EdgeKind::Social && w == 0.3));
        assert_eq!(g.out_degree(users[0]), 2);
    }

    #[test]
    fn example_2_3_normalization_weights() {
        // Paper Example 2.3: the first edge of the path from u0 is
        // normalized by W(neigh(u0)) = 1 + 0.3; the edge leaving URI0.0.0
        // after the vertical traversal is normalized by the 4 weight-1
        // edges leaving fragments of URI0.
        let (g, users, docs, _) = figure3();
        assert!((g.neighborhood_weight(users[0]) - 1.3).abs() < 1e-12);
        // Edges leaving the URI0 tree: postedBy (URI0→u0), commentsOn⁻
        // (URI0.1→URI1), hasSubject⁻ (URI0.0.0→a0) = 3 total for the root's
        // neighborhood (the whole tree).
        assert!((g.neighborhood_weight(docs[0]) - 3.0).abs() < 1e-12);
        // neigh(URI0.0.0) = {URI0, URI0.0, URI0.0.0}: edges out are
        // postedBy from URI0 and hasSubject⁻ from URI0.0.0 → weight 2.
        assert!((g.neighborhood_weight(docs[2]) - 2.0).abs() < 1e-12);
        // neigh(URI0.1) = {URI0, URI0.1}: postedBy + commentsOn⁻ → 2.
        assert!((g.neighborhood_weight(docs[3]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighborhood_nodes_follow_definition() {
        let (g, _, docs, a0) = figure3();
        let nb = g.neighborhood_nodes(docs[2]); // URI0.0.0
        assert_eq!(nb, vec![docs[0], docs[1], docs[2]]);
        // A leaf in the other branch: {URI0, URI0.1}.
        let nb = g.neighborhood_nodes(docs[3]);
        assert_eq!(nb, vec![docs[0], docs[3]]);
        assert_eq!(g.neighborhood_nodes(a0), vec![a0]);
        assert!(g.same_neighborhood(docs[0], docs[2]));
        assert!(!g.same_neighborhood(docs[2], docs[3]));
    }

    #[test]
    fn components_partition() {
        // URI0's tree, URI1 (comments on URI0.1) and a0 (hasSubject into the
        // tree) are one component; users are singletons.
        let (g, users, docs, a0) = figure3();
        let comps = g.components();
        let c = comps.component_of(docs[0]);
        for &n in &[docs[1], docs[2], docs[3], docs[4], a0] {
            assert_eq!(comps.component_of(n), c);
        }
        assert_ne!(comps.component_of(users[0]), c);
        assert_ne!(comps.component_of(users[0]), comps.component_of(users[1]));
        assert_eq!(comps.members(c).len(), 6);
    }

    #[test]
    fn component_membership_queries() {
        let (g, users, docs, _) = figure3();
        let comps = g.components();
        // The content component: both trees, zero users.
        let c = comps.component_of(docs[0]);
        let trees: Vec<TreeId> = g.component_documents(c).collect();
        assert_eq!(trees, vec![TreeId(0), TreeId(1)]);
        assert_eq!(g.component_doc_count(c), 2);
        assert_eq!(g.component_users(c).count(), 0);
        // A user singleton: one user, zero documents.
        let cu = comps.component_of(users[0]);
        assert_eq!(g.component_doc_count(cu), 0);
        assert_eq!(g.component_users(cu).collect::<Vec<_>>(), vec![users[0]]);
        // Every document lives in exactly one component.
        let total: usize = comps.iter().map(|comp| g.component_doc_count(comp)).sum();
        assert_eq!(total, g.forest().num_trees());
    }

    #[test]
    #[should_panic(expected = "tree registered twice")]
    fn double_registration_panics() {
        let mut forest = Forest::new();
        let t = forest.add_document(DocBuilder::new("d"));
        let mut g = GraphBuilder::new(forest);
        g.register_tree(t);
        g.register_tree(t);
    }
}
