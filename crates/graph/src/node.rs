//! Graph nodes: users, fragments, tags.

use s3_doc::DocNodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense id of a graph node. Fragment nodes of one document tree occupy a
/// contiguous id range in pre-order (mirroring `s3_doc::Forest`), which the
/// propagation engine exploits for vertical-neighborhood sums.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What a graph node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A social-network user (`Ω`); payload = dense user index.
    User(u32),
    /// A document node / fragment (`D`).
    Frag(DocNodeId),
    /// A tag (`T`); payload = dense tag index.
    Tag(u32),
}

impl NodeKind {
    /// Is this a user?
    #[inline]
    pub fn is_user(self) -> bool {
        matches!(self, NodeKind::User(_))
    }

    /// Is this a fragment?
    #[inline]
    pub fn is_frag(self) -> bool {
        matches!(self, NodeKind::Frag(_))
    }

    /// Is this a tag?
    #[inline]
    pub fn is_tag(self) -> bool {
        matches!(self, NodeKind::Tag(_))
    }

    /// The fragment id, if this is a fragment node.
    #[inline]
    pub fn as_frag(self) -> Option<DocNodeId> {
        match self {
            NodeKind::Frag(d) => Some(d),
            _ => None,
        }
    }

    /// Serialize for the durable snapshot format: discriminant byte plus
    /// the dense payload index.
    pub fn snap_write(self, out: &mut Vec<u8>) {
        match self {
            NodeKind::User(u) => {
                out.push(0);
                s3_snap::put_u32v(out, u);
            }
            NodeKind::Frag(d) => {
                out.push(1);
                s3_snap::put_u32v(out, d.0);
            }
            NodeKind::Tag(t) => {
                out.push(2);
                s3_snap::put_u32v(out, t);
            }
        }
    }

    /// Decode a node kind written by [`Self::snap_write`].
    pub fn snap_read(r: &mut s3_snap::SnapReader<'_>) -> Result<Self, s3_snap::SnapError> {
        Ok(match r.u8()? {
            0 => NodeKind::User(r.u32v()?),
            1 => NodeKind::Frag(DocNodeId(r.u32v()?)),
            2 => NodeKind::Tag(r.u32v()?),
            _ => return Err(s3_snap::SnapError::Value("node-kind discriminant")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::User(0).is_user());
        assert!(NodeKind::Tag(1).is_tag());
        let f = NodeKind::Frag(DocNodeId(3));
        assert!(f.is_frag());
        assert_eq!(f.as_frag(), Some(DocNodeId(3)));
        assert_eq!(NodeKind::User(0).as_frag(), None);
    }
}
