//! Graph nodes: users, fragments, tags.

use s3_doc::DocNodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense id of a graph node. Fragment nodes of one document tree occupy a
/// contiguous id range in pre-order (mirroring `s3_doc::Forest`), which the
/// propagation engine exploits for vertical-neighborhood sums.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What a graph node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A social-network user (`Ω`); payload = dense user index.
    User(u32),
    /// A document node / fragment (`D`).
    Frag(DocNodeId),
    /// A tag (`T`); payload = dense tag index.
    Tag(u32),
}

impl NodeKind {
    /// Is this a user?
    #[inline]
    pub fn is_user(self) -> bool {
        matches!(self, NodeKind::User(_))
    }

    /// Is this a fragment?
    #[inline]
    pub fn is_frag(self) -> bool {
        matches!(self, NodeKind::Frag(_))
    }

    /// Is this a tag?
    #[inline]
    pub fn is_tag(self) -> bool {
        matches!(self, NodeKind::Tag(_))
    }

    /// The fragment id, if this is a fragment node.
    #[inline]
    pub fn as_frag(self) -> Option<DocNodeId> {
        match self {
            NodeKind::Frag(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::User(0).is_user());
        assert!(NodeKind::Tag(1).is_tag());
        let f = NodeKind::Frag(DocNodeId(3));
        assert!(f.is_frag());
        assert_eq!(f.as_frag(), Some(DocNodeId(3)));
        assert_eq!(NodeKind::User(0).as_frag(), None);
    }
}
