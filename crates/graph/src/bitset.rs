//! Word-packed bitset for hot-path membership tracking.
//!
//! The propagation and search inner loops keep per-node / per-component
//! "seen" flags. As `Vec<bool>` those cost one byte per entry — 8× the
//! cache traffic of a packed bitset — and a dense clear is a byte-wise
//! memset. [`BitSet`] packs 64 flags per `u64` word: membership tests on
//! the hot path touch 8× fewer cache lines, and the sparse journal-driven
//! clears (`Propagation::reset`, `SearchScratch::rewind_search`) stay
//! O(touched) bit operations.
//!
//! The type is deliberately minimal — fixed universe size set by
//! [`BitSet::resize`], no iteration, no set algebra — because every user
//! in this workspace journals its own membership list and only ever needs
//! `get`/`set`/`clear`/`insert`.

/// A fixed-universe set of `usize` keys packed 64 per word.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over an empty universe; [`BitSet::resize`] sizes it.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// A cleared set over a universe of `n` keys.
    pub fn with_len(n: usize) -> Self {
        let mut s = BitSet::new();
        s.resize(n);
        s
    }

    /// Universe size (number of addressable keys, not members).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the universe empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grow or shrink the universe to `n` keys. Existing memberships below
    /// `n` are preserved; keys beyond the new universe are dropped (tail
    /// bits are re-zeroed so [`BitSet::count_ones`] stays exact).
    pub fn resize(&mut self, n: usize) {
        self.words.resize(n.div_ceil(64), 0);
        self.len = n;
        // Zero the bits of the last word beyond `n`: a later grow must
        // not resurrect them.
        if let (Some(last), rem) = (self.words.last_mut(), n % 64) {
            if rem != 0 {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Remove every member, keeping the universe size and capacity.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Is `i` a member? Panics when `i` is outside the universe.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for universe {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Add `i` to the set.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range for universe {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Remove `i` from the set.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range for universe {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Add `i`, returning whether it was newly added — the fused
    /// test-and-set of the propagation's first-visit journaling.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for universe {}", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Number of members (O(words)).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_round_trip() {
        let mut s = BitSet::with_len(130);
        assert_eq!(s.len(), 130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!s.get(i));
            s.set(i);
            assert!(s.get(i));
        }
        assert_eq!(s.count_ones(), 8);
        s.clear(64);
        assert!(!s.get(64) && s.get(63) && s.get(65));
        assert_eq!(s.count_ones(), 7);
    }

    #[test]
    fn insert_reports_first_addition_only() {
        let mut s = BitSet::with_len(70);
        assert!(s.insert(69));
        assert!(!s.insert(69));
        assert!(s.get(69));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn clear_all_keeps_universe() {
        let mut s = BitSet::with_len(100);
        for i in 0..100 {
            s.set(i);
        }
        s.clear_all();
        assert_eq!(s.len(), 100);
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn resize_preserves_members_and_zeroes_dropped_tail() {
        let mut s = BitSet::with_len(100);
        s.set(3);
        s.set(99);
        s.resize(160);
        assert!(s.get(3) && s.get(99) && !s.get(159));
        // Shrink below 99, then grow back: the dropped bit must not
        // resurrect.
        s.resize(50);
        assert_eq!(s.count_ones(), 1);
        s.resize(100);
        assert!(s.get(3) && !s.get(99));
    }

    #[test]
    fn empty_set_behaves() {
        let s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_universe_get_panics() {
        let s = BitSet::with_len(10);
        s.get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_universe_set_panics() {
        let mut s = BitSet::with_len(0);
        s.set(0);
    }
}
