//! Network-edge kinds (paper §2.4–§2.5).

use serde::{Deserialize, Serialize};

/// The S3 properties that form network edges, plus the paper's inverse
/// properties (§2.4). `S3:partOf` and `S3:contains` are deliberately absent:
/// they "merely describe data content and not an interaction" (§2.5) — the
/// tree structure lives in `s3_doc::Forest` and content in the `con` index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// `S3:social` (or any specialization): user → user, weighted.
    Social,
    /// `S3:postedBy`: document → posting user.
    PostedBy,
    /// Inverse: user → document they posted.
    PostedByInv,
    /// `S3:commentsOn`: comment document → commented fragment.
    CommentsOn,
    /// Inverse: fragment → comment on it.
    CommentsOnInv,
    /// `S3:hasSubject`: tag → tagged document-or-tag.
    HasSubject,
    /// Inverse: document-or-tag → tag on it.
    HasSubjectInv,
    /// `S3:hasAuthor`: tag → its author.
    HasAuthor,
    /// Inverse: user → tag they authored.
    HasAuthorInv,
}

impl EdgeKind {
    /// The inverse kind, where one exists (social links are directed and
    /// carry their own weight in each direction).
    pub fn inverse(self) -> Option<EdgeKind> {
        use EdgeKind::*;
        match self {
            Social => None,
            PostedBy => Some(PostedByInv),
            PostedByInv => Some(PostedBy),
            CommentsOn => Some(CommentsOnInv),
            CommentsOnInv => Some(CommentsOn),
            HasSubject => Some(HasSubjectInv),
            HasSubjectInv => Some(HasSubject),
            HasAuthor => Some(HasAuthorInv),
            HasAuthorInv => Some(HasAuthor),
        }
    }

    /// Is this one of the edges Algorithm `GetDocuments` chases to discover
    /// related documents (§4.1): `S3:commentsOn`, `S3:commentsOn⁻`,
    /// `S3:hasSubject`, `S3:hasSubject⁻`? (`S3:partOf` chains are implicit:
    /// a whole tree is one unit.) These edges also define the content
    /// components of the §5.2 pruning optimization.
    pub fn is_content_closure(self) -> bool {
        use EdgeKind::*;
        matches!(self, CommentsOn | CommentsOnInv | HasSubject | HasSubjectInv)
    }

    /// All kinds are network edges (that is the invariant of this type).
    pub fn is_network(self) -> bool {
        true
    }

    /// Serialize for the durable snapshot format: one discriminant byte.
    pub fn snap_write(self, out: &mut Vec<u8>) {
        use EdgeKind::*;
        out.push(match self {
            Social => 0,
            PostedBy => 1,
            PostedByInv => 2,
            CommentsOn => 3,
            CommentsOnInv => 4,
            HasSubject => 5,
            HasSubjectInv => 6,
            HasAuthor => 7,
            HasAuthorInv => 8,
        });
    }

    /// Decode an edge kind written by [`Self::snap_write`].
    pub fn snap_read(r: &mut s3_snap::SnapReader<'_>) -> Result<Self, s3_snap::SnapError> {
        use EdgeKind::*;
        Ok(match r.u8()? {
            0 => Social,
            1 => PostedBy,
            2 => PostedByInv,
            3 => CommentsOn,
            4 => CommentsOnInv,
            5 => HasSubject,
            6 => HasSubjectInv,
            7 => HasAuthor,
            8 => HasAuthorInv,
            _ => return Err(s3_snap::SnapError::Value("edge-kind discriminant")),
        })
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        use EdgeKind::*;
        match self {
            Social => "S3:social",
            PostedBy => "S3:postedBy",
            PostedByInv => "S3:postedBy⁻",
            CommentsOn => "S3:commentsOn",
            CommentsOnInv => "S3:commentsOn⁻",
            HasSubject => "S3:hasSubject",
            HasSubjectInv => "S3:hasSubject⁻",
            HasAuthor => "S3:hasAuthor",
            HasAuthorInv => "S3:hasAuthor⁻",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverses_are_involutive() {
        use EdgeKind::*;
        for k in [PostedBy, CommentsOn, HasSubject, HasAuthor] {
            let inv = k.inverse().unwrap();
            assert_eq!(inv.inverse(), Some(k));
        }
        assert_eq!(Social.inverse(), None);
    }

    #[test]
    fn content_closure_kinds() {
        use EdgeKind::*;
        assert!(CommentsOn.is_content_closure());
        assert!(HasSubjectInv.is_content_closure());
        assert!(!Social.is_content_closure());
        assert!(!PostedBy.is_content_closure());
        assert!(!HasAuthor.is_content_closure());
    }
}
