//! Entity-graph substrate (paper §2.5, §3.4 and the §5.2 optimizations).
//!
//! This crate holds the *network* view of an S3 instance: users, document
//! fragments and tags as nodes, and the paper's **network edges** — edges
//! whose properties are in the S3 namespace other than `S3:partOf`, with
//! users/documents/tags at both ends (`S3:social`, `S3:postedBy`,
//! `S3:commentsOn`, `S3:hasSubject`, `S3:hasAuthor` and their inverses).
//!
//! On top of it:
//!
//! * **vertical-neighborhood normalization** (§2.5 "Path normalization"):
//!   the weight of an edge taken after arriving at node `n` is divided by
//!   the total weight of the network edges leaving any vertical neighbor of
//!   `n` — [`SocialGraph::neighborhood_weight`];
//! * **proximity propagation** ([`Propagation`]): the paper's `borderProx`
//!   iteration (§5.2), an exact O(V+E)-per-step evaluation of the concrete
//!   social proximity of §3.4 — `prox(a,b) = Cγ · Σ_p prox→(p)/γ^|p|` — over
//!   *all* paths, with the long-path attenuation bound `B>n` that drives
//!   S3k's termination;
//! * **content components** ([`Components`]): the partition of documents
//!   and tags under `partOf` / `commentsOn±` / `hasSubject±` reachability,
//!   the pruning structure of §5.2;
//! * a **naive path-enumeration oracle** ([`naive`]) used by the test suite
//!   to certify the propagation engine against Definition 3.3 semantics;
//! * an optional **parallel explore step** (§5.2 reports ~2× with 8
//!   threads).

#![warn(missing_docs)]
pub mod bitset;
pub mod component;
pub mod edge;
pub mod graph;
pub mod naive;
pub mod node;
mod pool;
pub mod propagation;

pub use bitset::BitSet;
pub use component::{CompId, Components};
pub use edge::EdgeKind;
pub use graph::{GraphBuilder, SocialGraph};
pub use node::{NodeId, NodeKind};
pub use propagation::{Propagation, PropagationState};
