//! Steady-state allocation audit of the propagation hot path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up pass has grown every buffer to its high-water mark (including
//! the parallel path's parked worker pool), replaying the same step
//! sequence — sequential and forced-parallel — must perform **zero** heap
//! allocations, `reset` included. This is the contract the serving layer's
//! warm propagation pool depends on.
//!
//! Single `#[test]` on purpose: the counter is process-global, so
//! concurrently-running tests would bleed into each other's windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_doc::{DocBuilder, Forest};
use s3_graph::{EdgeKind, GraphBuilder, NodeId, Propagation, SocialGraph};

/// Counts allocation *events* (alloc + realloc; deallocs are free to
/// ignore — a steady-state path that allocates must call one of these).
struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A mid-size deterministic instance: enough users, trees and comment
/// chains that a propagation runs several non-trivial steps.
fn build_graph() -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let mut forest = Forest::new();
    let mut trees = Vec::new();
    for d in 0..24 {
        let mut b = DocBuilder::new(format!("doc{d}"));
        let mut nodes = vec![b.root()];
        for _ in 0..rng.gen_range(0..5usize) {
            let parent = nodes[rng.gen_range(0..nodes.len())];
            nodes.push(b.child(parent, "sec"));
        }
        trees.push(forest.add_document(b));
    }
    let mut g = GraphBuilder::new(forest);
    let users: Vec<NodeId> = (0..40).map(|_| g.add_user()).collect();
    let roots: Vec<NodeId> = trees.iter().map(|&t| g.register_tree(t)).collect();
    for _ in 0..80 {
        let a = users[rng.gen_range(0..users.len())];
        let b = users[rng.gen_range(0..users.len())];
        if a != b {
            g.add_edge(a, b, EdgeKind::Social, rng.gen_range(0.1..=1.0));
        }
    }
    for (i, &root) in roots.iter().enumerate() {
        let poster = users[rng.gen_range(0..users.len())];
        g.add_edge(root, poster, EdgeKind::PostedBy, 1.0);
        if i > 0 && rng.gen_bool(0.6) {
            let target = roots[rng.gen_range(0..i)];
            g.add_edge(root, target, EdgeKind::CommentsOn, rng.gen_range(0.1..=1.0));
        }
    }
    g.build()
}

const STEPS: usize = 8;
const THREADS: usize = 2;

/// Run the fixed step sequence and return the allocation events counted
/// over it (reset first so every pass replays the same trajectory).
fn run_pass(
    p: &mut Propagation<'_>,
    seeker: NodeId,
    newly: &mut Vec<NodeId>,
    parallel: bool,
) -> usize {
    p.reset(seeker);
    let before = ALLOC_EVENTS.load(Ordering::SeqCst);
    for _ in 0..STEPS {
        if parallel {
            p.step_into(THREADS, true, newly);
        } else {
            p.step_into(1, false, newly);
        }
    }
    ALLOC_EVENTS.load(Ordering::SeqCst) - before
}

#[test]
fn steady_state_step_into_allocates_nothing() {
    let graph = build_graph();
    let seeker = NodeId(0);
    let mut p = Propagation::new(&graph, 1.5, seeker);
    let mut newly = Vec::new();

    // Warm-up: one full sequential pass grows every scratch buffer to its
    // high-water mark; one forced-parallel pass additionally spawns the
    // parked worker pool and grows the per-worker buffers.
    run_pass(&mut p, seeker, &mut newly, false);
    run_pass(&mut p, seeker, &mut newly, true);

    // Steady state: replaying the same trajectory must not touch the
    // allocator — on either path, reset included.
    let seq = run_pass(&mut p, seeker, &mut newly, false);
    assert_eq!(seq, 0, "sequential step_into allocated {seq} times after warm-up");
    let par = run_pass(&mut p, seeker, &mut newly, true);
    assert_eq!(par, 0, "forced-parallel step_into allocated {par} times after warm-up");
    // And again sequentially, to prove the parallel pass left no residue
    // that re-allocates on the next sequential query.
    let seq2 = run_pass(&mut p, seeker, &mut newly, false);
    assert_eq!(seq2, 0, "sequential replay after a parallel pass allocated {seq2} times");
}
