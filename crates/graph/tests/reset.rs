//! Sparse-reset and resume-state equivalence for [`Propagation`].
//!
//! `Propagation::reset` clears only the journaled (touched) entries; these
//! properties certify that after *any* number of steps — sequential or
//! forced-parallel — a reset propagation is indistinguishable from a
//! freshly constructed one on every observable: per-node proximities and
//! visited flags over the whole graph, border mass, attenuation bound,
//! step counter, frontier-closure flag, and every subsequent step.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_doc::{DocBuilder, Forest};
use s3_graph::{EdgeKind, GraphBuilder, NodeId, Propagation, PropagationState, SocialGraph};

/// A seeded random instance graph: users with social edges, multi-node
/// documents with posters, comment edges between documents.
fn random_graph(seed: u64) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut forest = Forest::new();
    let num_docs = rng.gen_range(2..6usize);
    let mut trees = Vec::new();
    for d in 0..num_docs {
        let mut b = DocBuilder::new(format!("doc{d}"));
        let mut nodes = vec![b.root()];
        for _ in 0..rng.gen_range(0..4usize) {
            let parent = nodes[rng.gen_range(0..nodes.len())];
            nodes.push(b.child(parent, "sec"));
        }
        trees.push((forest.add_document(b), nodes));
    }
    let mut g = GraphBuilder::new(forest);
    let users: Vec<NodeId> = (0..rng.gen_range(2..6usize)).map(|_| g.add_user()).collect();
    let roots: Vec<NodeId> = trees.iter().map(|&(t, _)| g.register_tree(t)).collect();
    for _ in 0..rng.gen_range(2..10usize) {
        let a = users[rng.gen_range(0..users.len())];
        let b = users[rng.gen_range(0..users.len())];
        if a != b {
            g.add_edge(a, b, EdgeKind::Social, rng.gen_range(0.1..=1.0));
        }
    }
    for (i, &root) in roots.iter().enumerate() {
        if rng.gen_bool(0.8) {
            let poster = users[rng.gen_range(0..users.len())];
            g.add_edge(root, poster, EdgeKind::PostedBy, 1.0);
        }
        if i > 0 && rng.gen_bool(0.5) {
            let target = roots[rng.gen_range(0..i)];
            g.add_edge(root, target, EdgeKind::CommentsOn, rng.gen_range(0.1..=1.0));
        }
    }
    g.build()
}

/// Every observable of the two propagations must agree exactly, over the
/// whole graph (not just touched nodes — residue from a sloppy sparse
/// reset would show up precisely in the untouched remainder).
fn assert_equivalent(
    graph: &SocialGraph,
    a: &Propagation<'_>,
    b: &Propagation<'_>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.iteration(), b.iteration());
    prop_assert_eq!(a.seeker(), b.seeker());
    prop_assert!(a.border_mass() == b.border_mass());
    prop_assert!(a.bound_beyond() == b.bound_beyond());
    prop_assert_eq!(a.frontier_closed(), b.frontier_closed());
    prop_assert_eq!(a.touched_count(), b.touched_count());
    for node in graph.nodes() {
        prop_assert!(
            a.prox_leq(node) == b.prox_leq(node),
            "prox mismatch at {:?}: {} vs {}",
            node,
            a.prox_leq(node),
            b.prox_leq(node)
        );
        prop_assert_eq!(a.visited(node), b.visited(node));
    }
    prop_assert_eq!(
        a.visited_journal().collect::<Vec<_>>(),
        b.visited_journal().collect::<Vec<_>>()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 60, ..ProptestConfig::default() })]

    /// reset() after an arbitrary number of sequential or forced-parallel
    /// steps equals a fresh `Propagation::new`, now and on every later
    /// step.
    #[test]
    fn sparse_reset_equals_fresh_propagation(seed in 0u64..4000) {
        let graph = random_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let gamma = [1.2, 1.5, 2.0][rng.gen_range(0..3usize)];
        let users: Vec<NodeId> =
            graph.nodes().filter(|&n| graph.frag_of_node(n).is_none()).collect();
        let first = users[rng.gen_range(0..users.len())];
        let second = users[rng.gen_range(0..users.len())];
        let parallel = rng.gen_bool(0.5);

        let mut reused = Propagation::new(&graph, gamma, first);
        for _ in 0..rng.gen_range(0..12usize) {
            if parallel {
                reused.step_parallel_forced(3);
            } else {
                reused.step();
            }
        }
        reused.reset(second);
        let mut fresh = Propagation::new(&graph, gamma, second);
        assert_equivalent(&graph, &reused, &fresh)?;
        for _ in 0..8 {
            let a = reused.step();
            let b = fresh.step();
            prop_assert_eq!(a, b);
            assert_equivalent(&graph, &reused, &fresh)?;
        }
    }

    /// A detach/attach round trip through `PropagationState` preserves a
    /// warm propagation exactly, and resets exactly on seeker change.
    #[test]
    fn state_round_trip_preserves_or_resets_exactly(seed in 0u64..4000) {
        let graph = random_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA77AC4);
        let users: Vec<NodeId> =
            graph.nodes().filter(|&n| graph.frag_of_node(n).is_none()).collect();
        let si = rng.gen_range(0..users.len());
        let seeker = users[si];
        // A distinct seeker, so re-attaching under it must reset.
        let other = users[(si + 1) % users.len()];

        let mut warm = Propagation::new(&graph, 1.5, seeker);
        let mut shadow = Propagation::new(&graph, 1.5, seeker);
        for _ in 0..rng.gen_range(0..8usize) {
            warm.step();
            shadow.step();
        }
        // Same seeker: nothing may change.
        let warm2 = Propagation::attach(&graph, 1.5, seeker, warm.detach());
        assert_equivalent(&graph, &warm2, &shadow)?;
        // Other seeker: equals a fresh propagation.
        let reattached = Propagation::attach(&graph, 1.5, other, warm2.detach());
        let fresh = Propagation::new(&graph, 1.5, other);
        assert_equivalent(&graph, &reattached, &fresh)?;
        // A default (never-attached) state also starts cold.
        let blank = Propagation::attach(&graph, 1.5, other, PropagationState::new());
        assert_equivalent(&graph, &blank, &fresh)?;
    }
}
