//! `step_into` microbench: the cache-conscious SoA/bitset hot path vs a
//! faithful emulation of the seed implementation, sequential and
//! forced-parallel, small and large frontiers.
//!
//! Run with `cargo bench --bench propagation` (the bench carries its own
//! `main`; `BENCH_SMOKE=1` shrinks the corpus and rep counts for CI's
//! smoke tier). Writes `BENCH_propagation.json` via `s3-bench`'s
//! `JsonReport` when `BENCH_JSON_DIR` is set.
//!
//! # Baseline
//!
//! Absolute timings don't transfer between machines, so the regression
//! gate does not compare against stored numbers. Instead [`Legacy`]
//! re-implements the seed's hot path against the public graph API —
//! `Vec<bool>` visited flags, per-edge `out_edges` iterator calls, a
//! `(target, Δmass)` tuple buffer merged after emission, per-step scoped
//! worker threads on the parallel path — and both engines run in the same
//! process on the same corpus. The gate asserts the new path is not
//! slower than the legacy path it replaced (with a small noise margin),
//! and the recorded speedups are before/after numbers by construction.
//! A bitwise cross-check of every node's proximity guards the emulation's
//! faithfulness: both engines must produce identical floats, so they are
//! necessarily doing the same arithmetic in the same order.
//!
//! # `PARALLEL_CUTOFF` methodology
//!
//! The per-step sweep prints, for every step of the trajectory, the
//! number of emission units and the sequential vs forced-parallel(2)
//! step time of the new engine. The crossover — the smallest unit count
//! where the parallel step wins — is recorded in the JSON report;
//! `Propagation::PARALLEL_CUTOFF` is set above the measured crossover so
//! borderline steps stay sequential (dispatch to the parked pool costs
//! microseconds; see `crates/graph/src/pool.rs`).
//!
//! To try a candidate cutoff on a wider machine without a rebuild, set
//! `S3_PARALLEL_CUTOFF=<units>` (read once at startup; see
//! `Propagation::parallel_cutoff`) and re-run any engine-level bench —
//! this sweep itself measures both paths unconditionally, so the knob
//! does not change its numbers, only downstream consumers.

use s3_bench::{JsonReport, Table};
use s3_core::UserId;
use s3_datasets::{twitter, Scale};
use s3_doc::TreeId;
use s3_graph::{NodeId, NodeKind, Propagation, SocialGraph};
use std::time::{Duration, Instant};

/// `BENCH_SMOKE=1` (or `--smoke`) shrinks the run to CI-smoke size.
fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

/// Faithful re-implementation of the seed propagation hot path (the
/// pre-SoA layout), kept only as the bench baseline. Sequential emission
/// buffers `(target, Δmass)` tuples and merges them afterwards; parallel
/// emission spawns scoped threads per step. Operation order matches the
/// seed exactly, which the bitwise cross-check in `main` verifies.
struct Legacy<'g> {
    graph: &'g SocialGraph,
    gamma: f64,
    c_gamma: f64,
    gamma_pow: f64,
    x: Vec<f64>,
    frontier: Vec<u32>,
    acc: Vec<f64>,
    acc_nb: Vec<f64>,
    border_mass: f64,
    visited: Vec<bool>,
    touched: Vec<u32>,
    touched_trees: Vec<TreeId>,
    tree_touched: Vec<bool>,
    x_next: Vec<f64>,
    emit_buf: Vec<(u32, f64)>,
    frontier_next: Vec<u32>,
    unit_trees: Vec<TreeId>,
    unit_singles: Vec<u32>,
    scratch: LegacyScratch,
}

#[derive(Default)]
struct LegacyScratch {
    rho: Vec<f64>,
    anc: Vec<f64>,
    sub: Vec<f64>,
    trees: Vec<TreeId>,
}

#[derive(Clone, Copy)]
enum LegacyUnit {
    Tree(TreeId),
    Single(u32),
}

impl<'g> Legacy<'g> {
    fn new(graph: &'g SocialGraph, gamma: f64, seeker: NodeId) -> Self {
        let n = graph.num_nodes();
        let mut p = Legacy {
            graph,
            gamma,
            c_gamma: (gamma - 1.0) / gamma,
            gamma_pow: 1.0,
            x: vec![0.0; n],
            frontier: Vec::new(),
            acc: vec![0.0; n],
            acc_nb: vec![0.0; n],
            border_mass: 1.0,
            visited: vec![false; n],
            touched: Vec::new(),
            touched_trees: Vec::new(),
            tree_touched: vec![false; graph.forest().num_trees()],
            x_next: vec![0.0; n],
            emit_buf: Vec::new(),
            frontier_next: Vec::new(),
            unit_trees: Vec::new(),
            unit_singles: Vec::new(),
            scratch: LegacyScratch::default(),
        };
        p.x[seeker.index()] = 1.0;
        p.visited[seeker.index()] = true;
        p.acc[seeker.index()] = p.c_gamma;
        p.frontier.push(seeker.0);
        p.touched.push(seeker.0);
        let frontier = std::mem::take(&mut p.frontier);
        p.refresh_acc_nb(&frontier);
        p.frontier = frontier;
        p
    }

    fn reset(&mut self, seeker: NodeId) {
        for &v in &self.touched {
            let v = v as usize;
            self.x[v] = 0.0;
            self.acc[v] = 0.0;
            self.acc_nb[v] = 0.0;
            self.visited[v] = false;
        }
        self.touched.clear();
        for &tree in &self.touched_trees {
            let range = self.graph.tree_node_range(tree).expect("journaled tree");
            self.acc_nb[range].fill(0.0);
            self.tree_touched[tree.index()] = false;
        }
        self.touched_trees.clear();
        self.frontier.clear();
        self.gamma_pow = 1.0;
        self.border_mass = 1.0;
        self.x[seeker.index()] = 1.0;
        self.visited[seeker.index()] = true;
        self.acc[seeker.index()] = self.c_gamma;
        self.frontier.push(seeker.0);
        self.touched.push(seeker.0);
        let frontier = std::mem::take(&mut self.frontier);
        self.refresh_acc_nb(&frontier);
        self.frontier = frontier;
    }

    fn prox_leq(&self, node: NodeId) -> f64 {
        self.acc_nb[node.index()]
    }

    fn collect_units(&mut self) -> usize {
        self.unit_trees.clear();
        self.unit_singles.clear();
        for &v in &self.frontier {
            match self.graph.kind(NodeId(v)) {
                NodeKind::User(_) | NodeKind::Tag(_) => self.unit_singles.push(v),
                NodeKind::Frag(f) => self.unit_trees.push(self.graph.forest().tree_of(f)),
            }
        }
        self.unit_trees.sort_unstable();
        self.unit_trees.dedup();
        self.unit_trees.len() + self.unit_singles.len()
    }

    fn emit_unit(&self, unit: LegacyUnit, scratch: &mut LegacyScratch, out: &mut Vec<(u32, f64)>) {
        match unit {
            LegacyUnit::Single(v) => {
                let node = NodeId(v);
                let w = self.graph.neighborhood_weight(node);
                if w <= 0.0 {
                    return;
                }
                let rho = self.x[v as usize] / w;
                for (target, _, ew) in self.graph.out_edges(node) {
                    out.push((target.0, rho * ew));
                }
            }
            LegacyUnit::Tree(tree) => {
                let range = self.graph.tree_node_range(tree).expect("active tree");
                let forest = self.graph.forest();
                let doc_range = forest.tree_range(tree);
                let len = range.len();
                let base = range.start;
                let first_doc = doc_range.start;
                let rho = &mut scratch.rho;
                rho.clear();
                rho.resize(len, 0.0);
                for (i, r) in rho.iter_mut().enumerate() {
                    let node = base + i;
                    let w = self.graph.neighborhood_weight(NodeId(node as u32));
                    if w > 0.0 {
                        *r = self.x[node] / w;
                    }
                }
                let anc = &mut scratch.anc;
                anc.clear();
                anc.resize(len, 0.0);
                let sub = &mut scratch.sub;
                sub.clear();
                sub.extend_from_slice(rho);
                for i in 0..len {
                    let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                    if let Some(p) = forest.parent(doc) {
                        let pi = p.index() - first_doc;
                        anc[i] = anc[pi] + rho[pi];
                    }
                }
                for i in (0..len).rev() {
                    let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                    if let Some(p) = forest.parent(doc) {
                        let pi = p.index() - first_doc;
                        sub[pi] += sub[i];
                    }
                }
                for i in 0..len {
                    let emit = anc[i] + sub[i];
                    if emit <= 0.0 {
                        continue;
                    }
                    let node = NodeId((base + i) as u32);
                    for (target, _, ew) in self.graph.out_edges(node) {
                        out.push((target.0, emit * ew));
                    }
                }
            }
        }
    }

    fn merge(&mut self, batch: &[(u32, f64)]) {
        for &(target, dm) in batch {
            if self.x_next[target as usize] == 0.0 && dm > 0.0 {
                self.frontier_next.push(target);
            }
            self.x_next[target as usize] += dm;
        }
    }

    fn step(&mut self, threads: usize) -> Vec<NodeId> {
        let units = self.collect_units();
        if threads > 1 && units >= 2 {
            let units: Vec<LegacyUnit> = self
                .unit_trees
                .iter()
                .copied()
                .map(LegacyUnit::Tree)
                .chain(self.unit_singles.iter().copied().map(LegacyUnit::Single))
                .collect();
            let chunk = units.len().div_ceil(threads).max(1);
            let mut results: Vec<Vec<(u32, f64)>> = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for part in units.chunks(chunk) {
                    let this = &*self;
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut scratch = LegacyScratch::default();
                        for &u in part {
                            this.emit_unit(u, &mut scratch, &mut out);
                        }
                        out
                    }));
                }
                for h in handles {
                    results.push(h.join().expect("legacy worker panicked"));
                }
            });
            for batch in &results {
                self.merge(batch);
            }
        } else {
            let mut buf = std::mem::take(&mut self.emit_buf);
            let mut scratch = std::mem::take(&mut self.scratch);
            buf.clear();
            for &tree in &self.unit_trees {
                self.emit_unit(LegacyUnit::Tree(tree), &mut scratch, &mut buf);
            }
            for &v in &self.unit_singles {
                self.emit_unit(LegacyUnit::Single(v), &mut scratch, &mut buf);
            }
            let buf2 = std::mem::take(&mut buf);
            self.merge(&buf2);
            self.emit_buf = buf2;
            self.scratch = scratch;
        }
        // The seed's `step()` wrapper allocated the newly-visited list
        // afresh every call; that per-step allocation is part of the
        // baseline cost, so the emulation reproduces it.
        let mut newly = Vec::new();
        self.advance(&mut newly);
        newly
    }

    fn advance(&mut self, newly: &mut Vec<NodeId>) {
        self.frontier_next.sort_unstable();
        self.frontier_next.dedup();
        for &v in &self.frontier {
            self.x[v as usize] = 0.0;
        }
        std::mem::swap(&mut self.x, &mut self.x_next);
        std::mem::swap(&mut self.frontier, &mut self.frontier_next);
        self.frontier_next.clear();
        self.gamma_pow *= self.gamma;
        let factor = self.c_gamma / self.gamma_pow;
        self.border_mass = 0.0;
        let frontier = std::mem::take(&mut self.frontier);
        for &v in &frontier {
            let m = self.x[v as usize];
            self.border_mass += m;
            self.acc[v as usize] += m * factor;
            if !self.visited[v as usize] {
                self.visited[v as usize] = true;
                self.touched.push(v);
                newly.push(NodeId(v));
            }
        }
        self.refresh_acc_nb(&frontier);
        self.frontier = frontier;
    }

    fn refresh_acc_nb(&mut self, touched: &[u32]) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let trees = &mut scratch.trees;
        trees.clear();
        for &v in touched {
            match self.graph.kind(NodeId(v)) {
                NodeKind::User(_) | NodeKind::Tag(_) => {
                    self.acc_nb[v as usize] = self.acc[v as usize];
                }
                NodeKind::Frag(f) => trees.push(self.graph.forest().tree_of(f)),
            }
        }
        trees.sort_unstable();
        trees.dedup();
        for &tree in trees.iter() {
            if !self.tree_touched[tree.index()] {
                self.tree_touched[tree.index()] = true;
                self.touched_trees.push(tree);
            }
            let range = self.graph.tree_node_range(tree).expect("registered");
            let forest = self.graph.forest();
            let first_doc = forest.tree_range(tree).start;
            let base = range.start;
            let len = range.len();
            let anc = &mut scratch.anc;
            anc.clear();
            anc.resize(len, 0.0);
            let sub = &mut scratch.sub;
            sub.clear();
            sub.extend((0..len).map(|i| self.acc[base + i]));
            for i in 0..len {
                let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                if let Some(p) = forest.parent(doc) {
                    let pi = p.index() - first_doc;
                    anc[i] = anc[pi] + self.acc[base + pi];
                }
            }
            for i in (0..len).rev() {
                let doc = s3_doc::DocNodeId((first_doc + i) as u32);
                if let Some(p) = forest.parent(doc) {
                    let pi = p.index() - first_doc;
                    sub[pi] += sub[i];
                }
            }
            for i in 0..len {
                self.acc_nb[base + i] = anc[i] + sub[i];
            }
        }
        self.scratch = scratch;
    }
}

const GAMMA: f64 = 1.5;

/// One timed trajectory: reset, run `steps` steps, recording per-step
/// durations into `per_step` (accumulated across reps).
fn run_new(
    p: &mut Propagation<'_>,
    seeker: NodeId,
    newly: &mut Vec<NodeId>,
    steps: usize,
    threads: usize,
    force: bool,
    per_step: &mut [Duration],
) {
    p.reset(seeker);
    for slot in per_step.iter_mut().take(steps) {
        let t = Instant::now();
        p.step_into(threads, force, newly);
        *slot += t.elapsed();
    }
}

fn run_legacy(
    p: &mut Legacy<'_>,
    seeker: NodeId,
    steps: usize,
    threads: usize,
    per_step: &mut [Duration],
) {
    p.reset(seeker);
    for slot in per_step.iter_mut().take(steps) {
        let t = Instant::now();
        p.step(threads);
        *slot += t.elapsed();
    }
}

fn micros(d: Duration, reps: usize) -> f64 {
    d.as_secs_f64() * 1e6 / reps as f64
}

fn main() {
    let smoke = smoke_mode();
    let scale = if smoke { Scale::Tiny } else { Scale::Small };
    let mut cfg = twitter::TwitterConfig::scaled(scale);
    if smoke {
        cfg.users = 120;
        cfg.tweets = 700;
        println!("[smoke mode: tiny corpus, reduced reps — gate still active]\n");
    }
    let ds = twitter::generate(&cfg);
    let inst = &ds.instance;
    let graph = inst.graph();
    let seeker = inst.user_node(UserId(0));
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let steps = 8usize;
    let reps = if smoke { 5 } else { 12 };

    println!(
        "propagation step_into: SoA/bitset hot path vs seed emulation\n\
         graph: {} nodes, {} edges, {} cores detected, {} steps x {} reps\n",
        graph.num_nodes(),
        graph.num_edges(),
        cores,
        steps,
        reps,
    );

    // ---- Faithfulness cross-check: both engines, same floats, bitwise. --
    let mut p = Propagation::new(graph, GAMMA, seeker);
    let mut legacy = Legacy::new(graph, GAMMA, seeker);
    let mut newly = Vec::new();
    for s in 0..steps {
        p.step_into(1, false, &mut newly);
        legacy.step(1);
        for i in 0..graph.num_nodes() {
            let node = NodeId(i as u32);
            assert_eq!(
                p.prox_leq(node).to_bits(),
                legacy.prox_leq(node).to_bits(),
                "sequential step {s}: node {i} diverged — the legacy emulation \
                 (or the new layout) is not faithful to the seed semantics"
            );
        }
    }
    let mut p2 = Propagation::new(graph, GAMMA, seeker);
    let mut legacy2 = Legacy::new(graph, GAMMA, seeker);
    for _ in 0..steps {
        p2.step_into(2, true, &mut newly);
        legacy2.step(2);
    }
    for i in 0..graph.num_nodes() {
        let node = NodeId(i as u32);
        assert_eq!(
            p2.prox_leq(node).to_bits(),
            legacy2.prox_leq(node).to_bits(),
            "parallel trajectories diverged at node {i}"
        );
    }
    println!(
        "cross-check: new and legacy engines bitwise identical over {steps} steps (seq + par2)\n"
    );

    // ---- Unit counts per step (from the legacy engine's frontier). -----
    let mut units_per_step = vec![0usize; steps];
    legacy.reset(seeker);
    for u in units_per_step.iter_mut() {
        *u = legacy.collect_units();
        legacy.step(1);
    }

    // ---- Timed sweeps. -------------------------------------------------
    // `reps` passes per round, best (minimum) per-step time across rounds:
    // the minimum is robust against scheduler noise on shared CI hosts,
    // and the four configurations are interleaved within each round so a
    // noisy stretch degrades all of them equally.
    let rounds = if smoke { 4 } else { 8 };
    let mut seq_new = vec![Duration::MAX; steps];
    let mut seq_old = vec![Duration::MAX; steps];
    let mut par_new = vec![Duration::MAX; steps];
    let mut par_old = vec![Duration::MAX; steps];
    // Warm-up passes (page in buffers, spawn the pool) before timing.
    run_new(&mut p, seeker, &mut newly, steps, 1, false, &mut vec![Duration::ZERO; steps]);
    run_new(&mut p, seeker, &mut newly, steps, 2, true, &mut vec![Duration::ZERO; steps]);
    run_legacy(&mut legacy, seeker, steps, 1, &mut vec![Duration::ZERO; steps]);
    for _ in 0..rounds {
        let mut r_seq_new = vec![Duration::ZERO; steps];
        let mut r_seq_old = vec![Duration::ZERO; steps];
        let mut r_par_new = vec![Duration::ZERO; steps];
        let mut r_par_old = vec![Duration::ZERO; steps];
        for _ in 0..reps {
            run_new(&mut p, seeker, &mut newly, steps, 1, false, &mut r_seq_new);
            run_legacy(&mut legacy, seeker, steps, 1, &mut r_seq_old);
            run_new(&mut p, seeker, &mut newly, steps, 2, true, &mut r_par_new);
            run_legacy(&mut legacy, seeker, steps, 2, &mut r_par_old);
        }
        for s in 0..steps {
            seq_new[s] = seq_new[s].min(r_seq_new[s]);
            seq_old[s] = seq_old[s].min(r_seq_old[s]);
            par_new[s] = par_new[s].min(r_par_new[s]);
            par_old[s] = par_old[s].min(r_par_old[s]);
        }
    }

    let mut table = Table::new(&[
        "step",
        "units",
        "seq new",
        "seq legacy",
        "speedup",
        "par2 new",
        "par2 legacy",
        "par2 speedup",
    ]);
    for s in 0..steps {
        table.row(vec![
            s.to_string(),
            units_per_step[s].to_string(),
            format!("{:.2}µs", micros(seq_new[s], reps)),
            format!("{:.2}µs", micros(seq_old[s], reps)),
            format!("{:.2}x", seq_old[s].as_secs_f64() / seq_new[s].as_secs_f64().max(1e-12)),
            format!("{:.2}µs", micros(par_new[s], reps)),
            format!("{:.2}µs", micros(par_old[s], reps)),
            format!("{:.2}x", par_old[s].as_secs_f64() / par_new[s].as_secs_f64().max(1e-12)),
        ]);
    }
    print!("{}", table.render());

    let total = |v: &[Duration]| v.iter().sum::<Duration>();
    let seq_new_t = total(&seq_new);
    let seq_old_t = total(&seq_old);
    let par_new_t = total(&par_new);
    let par_old_t = total(&par_old);
    let seq_speedup = seq_old_t.as_secs_f64() / seq_new_t.as_secs_f64().max(1e-12);
    let par_speedup = par_old_t.as_secs_f64() / par_new_t.as_secs_f64().max(1e-12);

    // Small vs large frontier split: the first two steps vs the rest.
    let small = 2.min(steps);
    let sum_range = |v: &[Duration], r: std::ops::Range<usize>| -> Duration { v[r].iter().sum() };
    let seq_new_small = sum_range(&seq_new, 0..small);
    let seq_new_large = sum_range(&seq_new, small..steps);
    let par_new_small = sum_range(&par_new, 0..small);
    let par_new_large = sum_range(&par_new, small..steps);

    // Cutoff methodology: smallest unit count at which a step that
    // *actually fanned out* (≥2 units — below that `step_into` runs
    // sequentially even when forced) beat the sequential step
    // (0 = parallel never won in the measured range).
    let crossover = (0..steps)
        .filter(|&s| units_per_step[s] >= 2 && par_new[s] < seq_new[s])
        .map(|s| units_per_step[s])
        .min()
        .unwrap_or(0);

    println!(
        "\ntotals: seq {:.1}µs (legacy {:.1}µs, {:.2}x) | par2 {:.1}µs (legacy {:.1}µs, {:.2}x)",
        micros(seq_new_t, reps),
        micros(seq_old_t, reps),
        seq_speedup,
        micros(par_new_t, reps),
        micros(par_old_t, reps),
        par_speedup,
    );
    let max_units = *units_per_step.iter().max().unwrap_or(&0);
    if crossover == 0 {
        println!(
            "parallel-beats-sequential crossover: none observed up to {} units \
             (PARALLEL_CUTOFF = {})",
            max_units,
            Propagation::PARALLEL_CUTOFF
        );
    } else {
        println!(
            "parallel-beats-sequential crossover: {} units (PARALLEL_CUTOFF = {})",
            crossover,
            Propagation::PARALLEL_CUTOFF
        );
    }

    let mut report = JsonReport::new("propagation");
    report
        .str("scale", if smoke { "smoke" } else { "small" })
        .int("cores", cores as u64)
        .int("nodes", graph.num_nodes() as u64)
        .int("edges", graph.num_edges() as u64)
        .int("steps", steps as u64)
        .int("reps", reps as u64)
        .int("rounds", rounds as u64)
        .num("seq.new_us", micros(seq_new_t, reps))
        .num("seq.legacy_us", micros(seq_old_t, reps))
        .num("seq.speedup", seq_speedup)
        .num("par2.new_us", micros(par_new_t, reps))
        .num("par2.legacy_us", micros(par_old_t, reps))
        .num("par2.speedup", par_speedup)
        .num("small_frontier.seq_new_us", micros(seq_new_small, reps))
        .num("small_frontier.par2_new_us", micros(par_new_small, reps))
        .num("large_frontier.seq_new_us", micros(seq_new_large, reps))
        .num("large_frontier.par2_new_us", micros(par_new_large, reps))
        .int("cutoff.crossover_units", crossover as u64)
        .int("cutoff.constant", Propagation::PARALLEL_CUTOFF as u64)
        .int("cutoff.effective", Propagation::parallel_cutoff() as u64)
        .int("cutoff.max_units_measured", max_units as u64);

    // ---- Regression gate: new must not be slower than the seed path. ---
    // 10% noise margin; the measured speedup is expected well above it.
    let gate_ratio = seq_new_t.as_secs_f64() / seq_old_t.as_secs_f64().max(1e-12);
    let gate_ok = gate_ratio <= 1.10;
    report.num("gate.new_over_legacy", gate_ratio).int("gate.passed", gate_ok as u64);
    report.write_and_announce();

    assert!(
        gate_ok,
        "regression gate: new sequential path is {gate_ratio:.2}x the legacy \
         baseline (must be <= 1.10x)"
    );
    println!("gate: ok (new/legacy = {gate_ratio:.3})");
}
