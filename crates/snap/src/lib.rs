//! Primitive binary codec for the durable snapshot format.
//!
//! `s3-core`'s snapshot and WAL modules (and the per-crate serializers
//! they call into: forest, vocabulary, RDF store, graph) all encode with
//! the same primitives: LEB128 varints, bit-exact little-endian `f64`s
//! (the byte-identity property bar requires the exact bits back),
//! length-prefixed UTF-8 strings, and length-prefixed nested blocks.
//! This crate sits below every data crate so they can share one
//! bounds-checked decoder; it deliberately mirrors `s3-wire`'s codec
//! (same varint format) without depending on it — the wire crate sits
//! *above* `s3-core` in the dependency order.
//!
//! Decoding is panic-free by construction: every read checks bounds
//! before touching the buffer, every sequence length is sanity-checked
//! against the remaining bytes before any allocation, and [`crc32`]
//! gives the snapshot/WAL layers their corruption check. The snapshot
//! robustness proptests (truncate/flip any byte ⇒ clean error) lean on
//! exactly these guarantees.

#![warn(missing_docs)]

/// Errors produced while decoding snapshot or WAL bytes.
#[derive(Debug)]
pub enum SnapError {
    /// The buffer ended in the middle of a value.
    Truncated,
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The format version is not the one this build writes.
    Version(u16),
    /// A checksum did not match — the bytes are corrupt.
    Checksum,
    /// A decoded value is structurally invalid (bad enum discriminant,
    /// out-of-range index, non-UTF-8 string, inconsistent lengths, ...).
    Value(&'static str),
    /// A section or file left undecoded trailing bytes.
    TrailingBytes(usize),
    /// Underlying file I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "truncated snapshot data"),
            SnapError::BadMagic => write!(f, "bad magic bytes (not a snapshot file)"),
            SnapError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapError::Checksum => write!(f, "checksum mismatch (corrupt snapshot data)"),
            SnapError::Value(what) => write!(f, "invalid value: {what}"),
            SnapError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decoded value"),
            SnapError::Io(e) => write!(f, "snapshot i/o: {e}"),
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapError::Truncated
        } else {
            SnapError::Io(e)
        }
    }
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3 polynomial) over `bytes` — the corruption check
/// stamped on every snapshot section and WAL record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Append a `u64` as a LEB128 varint.
pub fn put_u64v(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a `u32` as a LEB128 varint.
pub fn put_u32v(out: &mut Vec<u8>, v: u32) {
    put_u64v(out, v as u64);
}

/// Append a `usize` as a LEB128 varint.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64v(out, v as u64);
}

/// Append an `f64` as its IEEE-754 bits, little-endian (bit-exact round
/// trip — weights and scores must come back identical).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a bool as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append a varint-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Append a varint-length-prefixed nested block encoded by `encode` —
/// the decoder recovers it with [`SnapReader::block`], which confines
/// all of the block's reads to its own extent.
pub fn put_block(out: &mut Vec<u8>, encode: impl FnOnce(&mut Vec<u8>)) {
    let mut body = Vec::new();
    encode(&mut body);
    put_usize(out, body.len());
    out.extend_from_slice(&body);
}

/// A bounds-checked cursor over snapshot bytes. No method panics on
/// malformed input.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wrap a byte buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        let b = *self.buf.get(self.pos).ok_or(SnapError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Value("boolean byte not 0/1")),
        }
    }

    /// Read a LEB128 varint as `u64`.
    pub fn u64v(&mut self) -> Result<u64, SnapError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return Err(SnapError::Value("varint overflows u64"));
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(SnapError::Value("varint longer than 10 bytes"))
    }

    /// Read a varint that must fit a `u32`.
    pub fn u32v(&mut self) -> Result<u32, SnapError> {
        u32::try_from(self.u64v()?).map_err(|_| SnapError::Value("varint overflows u32"))
    }

    /// Read a varint that must fit a `usize`.
    pub fn usize_v(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64v()?).map_err(|_| SnapError::Value("varint overflows usize"))
    }

    /// Read an `f64` from its little-endian IEEE bits.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        if self.remaining() < 8 {
            return Err(SnapError::Truncated);
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Read a varint-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        let len = self.usize_v()?;
        if len > self.remaining() {
            return Err(SnapError::Truncated);
        }
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        std::str::from_utf8(bytes).map_err(|_| SnapError::Value("string is not UTF-8"))
    }

    /// Read a sequence length and reject it outright when even
    /// `min_elem_bytes` per element cannot fit in the remaining bytes —
    /// the guard that keeps corrupt lengths from pre-allocating.
    pub fn seq(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let len = self.usize_v()?;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapError::Truncated);
        }
        Ok(len)
    }

    /// Read a varint-length-prefixed nested block (written with
    /// [`put_block`]) as its own reader. The block must be fully
    /// consumed; call [`SnapReader::finish`] on it.
    pub fn block(&mut self) -> Result<SnapReader<'a>, SnapError> {
        let len = self.usize_v()?;
        if len > self.remaining() {
            return Err(SnapError::Truncated);
        }
        let sub = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(SnapReader::new(sub))
    }

    /// Error unless every byte was consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_and_overflow_cleanly() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            out.clear();
            put_u64v(&mut out, v);
            let mut r = SnapReader::new(&out);
            assert_eq!(r.u64v().unwrap(), v);
            r.finish().unwrap();
        }
        // 11 continuation bytes can never be a valid varint.
        let mut r = SnapReader::new(&[0x80; 11]);
        assert!(matches!(r.u64v(), Err(SnapError::Value(_))));
    }

    #[test]
    fn f64_bits_are_exact() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE, 0.1 + 0.2] {
            let mut out = Vec::new();
            put_f64(&mut out, v);
            let mut r = SnapReader::new(&out);
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn blocks_confine_reads_and_report_trailing() {
        let mut out = Vec::new();
        put_block(&mut out, |b| put_str(b, "abc"));
        put_u32v(&mut out, 7);
        let mut r = SnapReader::new(&out);
        let mut block = r.block().unwrap();
        assert_eq!(block.str().unwrap(), "abc");
        block.finish().unwrap();
        assert_eq!(r.u32v().unwrap(), 7);
        r.finish().unwrap();
    }

    #[test]
    fn seq_guard_rejects_absurd_lengths() {
        let mut out = Vec::new();
        put_usize(&mut out, usize::MAX / 2);
        let mut r = SnapReader::new(&out);
        assert!(matches!(r.seq(4), Err(SnapError::Truncated)));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut r = SnapReader::new(&[1, 2, 3]);
        assert!(matches!(r.f64(), Err(SnapError::Truncated)));
        let mut r = SnapReader::new(&[200]);
        assert!(matches!(r.u64v(), Err(SnapError::Truncated)));
        let mut r = SnapReader::new(&[5, b'a']);
        assert!(matches!(r.str(), Err(SnapError::Truncated)));
    }
}
