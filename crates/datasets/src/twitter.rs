//! Synthetic I1: the Twitter-like instance (paper §5.1).
//!
//! Construction rules follow the paper:
//!
//! * every non-retweet tweet becomes a 3-node document — a `text` node
//!   (semantically enriched), a `date` node and a `geo` node;
//! * a retweet of `t` contributes **tags on `t`**: an endorsement, plus one
//!   keyword tag per hashtag it introduces;
//! * a reply is a document that `S3:commentsOn` the replied tweet;
//! * user links: the paper computes a Jaccard similarity over the users'
//!   keyword sets and keeps pairs above 0.1. We generate community
//!   structure first (users share topics), then set the edge weight to the
//!   Jaccard similarity of the two users' community sets — the same
//!   statistic the paper's `u∼` approximates — keeping pairs ≥ threshold.
//!
//! Shape targets from Figure 4 (scaled): 85% retweets, 6.9% replies,
//! documents ≈ 15% of tweets, ~0.6 tags/tweet, 2 non-root fragments per
//! document.

use crate::ontology::{Ontology, OntologyConfig};
use crate::text::TextGen;
use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{InstanceBuilder, S3Instance, TagSubject, UserId};
use s3_doc::{DocBuilder, DocNodeId};
use s3_text::{KeywordId, Language};

/// Generator parameters for the Twitter-like instance.
#[derive(Debug, Clone)]
pub struct TwitterConfig {
    /// Number of users.
    pub users: usize,
    /// Total tweets (originals + retweets).
    pub tweets: usize,
    /// Fraction of tweets that are retweets (paper: 85%).
    pub retweet_ratio: f64,
    /// Fraction of original tweets that reply to another tweet (paper: 6.9%).
    pub reply_ratio: f64,
    /// Base vocabulary size.
    pub vocab_size: usize,
    /// Number of hashtags.
    pub hashtags: usize,
    /// Probability that a retweet introduces a hashtag tag.
    pub hashtag_prob: f64,
    /// Number of user communities (topical clusters).
    pub communities: usize,
    /// Tweet text length range (tokens).
    pub tweet_len: (usize, usize),
    /// Probability of an entity mention per token (semantic enrichment).
    pub entity_prob: f64,
    /// Per-community topic vocabulary size.
    pub topic_words: usize,
    /// Probability a token is drawn from the community topic.
    pub topic_prob: f64,
    /// Jaccard threshold for keeping a user edge (paper: 0.1).
    pub similarity_threshold: f64,
    /// Average number of candidate neighbors sampled per user.
    pub avg_degree: usize,
    /// Ontology shape.
    pub ontology: OntologyConfig,
    /// Master seed.
    pub seed: u64,
}

impl TwitterConfig {
    /// Preset sizes per scale (Small ≈ 1/300 of the paper's crawl).
    pub fn scaled(scale: Scale) -> Self {
        let f = scale.factor();
        let users = (1600.0 * f) as usize;
        TwitterConfig {
            users,
            tweets: (3300.0 * f) as usize,
            retweet_ratio: 0.85,
            reply_ratio: 0.069,
            vocab_size: (4000.0 * f) as usize + 500,
            hashtags: (300.0 * f) as usize + 30,
            hashtag_prob: 0.4,
            communities: ((users as f64 / 40.0) as usize).max(4),
            tweet_len: (4, 12),
            entity_prob: 0.22,
            topic_words: 25,
            topic_prob: 0.35,
            similarity_threshold: 0.1,
            avg_degree: 12,
            ontology: OntologyConfig {
                classes: 260,
                entities: 420,
                properties: 12,
                seed: 0xD8BED1A,
            },
            seed: 0x7717E2,
        }
    }
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig::scaled(Scale::Small)
    }
}

/// Shape counters of the generated instance (the Figure 4 row data).
#[derive(Debug, Clone, Copy, Default)]
pub struct TwitterMeta {
    /// Total simulated tweets.
    pub tweets: usize,
    /// Retweets (become tags).
    pub retweets: usize,
    /// Replies (become commentsOn documents).
    pub replies: usize,
    /// Documents created.
    pub documents: usize,
    /// Keyword (hashtag) tags created.
    pub hashtag_tags: usize,
    /// Endorsement tags created.
    pub endorsements: usize,
}

/// The generated dataset.
#[derive(Debug)]
pub struct TwitterDataset {
    /// The frozen instance.
    pub instance: S3Instance,
    /// Generation counters.
    pub meta: TwitterMeta,
    /// The installed ontology (query generation may target classes).
    pub ontology: Ontology,
}

/// Generate the Twitter-like instance.
pub fn generate(config: &TwitterConfig) -> TwitterDataset {
    let (b, meta, ontology) = generate_builder(config);
    TwitterDataset { instance: b.build(), meta, ontology }
}

/// [`generate`], stopping before the freeze: the populated
/// [`InstanceBuilder`] is returned instead of a frozen instance, so a
/// live engine (`s3-engine`'s `LiveEngine` / `LiveShardedEngine`) can
/// retain it and keep ingesting on top of the generated corpus.
pub fn generate_builder(config: &TwitterConfig) -> (InstanceBuilder, TwitterMeta, Ontology) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = InstanceBuilder::new(Language::English);
    let ontology = Ontology::install(&config.ontology, &mut b);
    let mut textgen = TextGen::new("word", config.vocab_size, config.ontology.entities);

    // ---- Users and communities. ----
    let users: Vec<UserId> = (0..config.users).map(|_| b.add_user()).collect();
    let mut community_of: Vec<Vec<usize>> = Vec::with_capacity(config.users);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); config.communities];
    for (i, _) in users.iter().enumerate() {
        let n = 1 + rng.gen_range(0..3usize.min(config.communities));
        let mut cs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..config.communities)).collect();
        cs.sort_unstable();
        cs.dedup();
        for &c in &cs {
            members[c].push(i);
        }
        community_of.push(cs);
    }
    // Topic pockets: distinct word ranks per community.
    let topics: Vec<Vec<usize>> = (0..config.communities)
        .map(|c| {
            (0..config.topic_words)
                .map(|i| (c * config.topic_words + i) % config.vocab_size)
                .collect()
        })
        .collect();

    // ---- Social edges: community-set Jaccard above the threshold. ----
    let jaccard = |a: &[usize], bs: &[usize]| -> f64 {
        let inter = a.iter().filter(|x| bs.contains(x)).count() as f64;
        let union = (a.len() + bs.len()) as f64 - inter;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    };
    let mut edge_seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for i in 0..config.users {
        for _ in 0..config.avg_degree {
            // Sample a candidate from one of i's communities (or anywhere).
            let j = if !community_of[i].is_empty() && rng.gen_bool(0.8) {
                let c = community_of[i][rng.gen_range(0..community_of[i].len())];
                if members[c].is_empty() {
                    continue;
                }
                members[c][rng.gen_range(0..members[c].len())]
            } else {
                rng.gen_range(0..config.users)
            };
            if i == j {
                continue;
            }
            let key = (i.min(j), i.max(j));
            if !edge_seen.insert(key) {
                continue;
            }
            let w = jaccard(&community_of[i], &community_of[j]);
            if w >= config.similarity_threshold {
                b.add_social_edge(users[i], users[j], w.min(1.0));
                b.add_social_edge(users[j], users[i], w.min(1.0));
            }
        }
    }

    // ---- Tweets. ----
    let mut meta = TwitterMeta { tweets: config.tweets, ..TwitterMeta::default() };
    // Hashtag keyword pool.
    let hashtag_kws: Vec<KeywordId> = (0..config.hashtags)
        .map(|h| b.analyzer_mut().vocabulary_mut().intern(&format!("#tag{h}")))
        .collect();
    let hashtag_zipf = crate::zipf::Zipf::new(config.hashtags.max(1), 1.1);
    // Roots of original tweets, with retweet counts for preferential
    // attachment of retweets/replies.
    let mut originals: Vec<(DocNodeId, u32)> = Vec::new();

    let pick_original = |rng: &mut StdRng, originals: &[(DocNodeId, u32)]| -> usize {
        // Preferential: weight 1 + retweet count.
        let total: u64 = originals.iter().map(|(_, c)| 1 + *c as u64).sum();
        let mut x = rng.gen_range(0..total);
        for (i, (_, c)) in originals.iter().enumerate() {
            let w = 1 + *c as u64;
            if x < w {
                return i;
            }
            x -= w;
        }
        originals.len() - 1
    };

    for _ in 0..config.tweets {
        let author_idx = rng.gen_range(0..config.users);
        let author = users[author_idx];
        let is_retweet = !originals.is_empty() && rng.gen_bool(config.retweet_ratio);
        if is_retweet {
            // Retweet ⇒ endorsement tag (+ hashtag keyword tags) on t.
            meta.retweets += 1;
            let oi = pick_original(&mut rng, &originals);
            let (root, _) = originals[oi];
            b.add_tag(TagSubject::Frag(root), author, None);
            meta.endorsements += 1;
            if rng.gen_bool(config.hashtag_prob) && !hashtag_kws.is_empty() {
                let h = hashtag_kws[hashtag_zipf.sample(&mut rng)];
                b.analyzer_mut().vocabulary_mut().add_occurrences(h, 1);
                b.add_tag(TagSubject::Frag(root), author, Some(h));
                meta.hashtag_tags += 1;
            }
            originals[oi].1 += 1;
            continue;
        }
        // Original tweet: text/date/geo document.
        let topic = community_of[author_idx].first().map(|&c| topics[c].as_slice());
        let len = rng.gen_range(config.tweet_len.0..=config.tweet_len.1);
        let text_kws = textgen.content(
            &mut b,
            &mut rng,
            len,
            topic,
            config.topic_prob,
            Some(&ontology),
            config.entity_prob,
        );
        let date_kw = {
            let day = rng.gen_range(0..2u32); // the paper's crawl spans one day
            let v = b.analyzer_mut().vocabulary_mut();
            let k = v.intern(&format!("2014-05-{:02}", 2 + day));
            v.add_occurrences(k, 1);
            k
        };
        let mut doc = DocBuilder::new("tweet");
        let text = doc.child(doc.root(), "text");
        doc.set_content(text, text_kws);
        let date = doc.child(doc.root(), "date");
        doc.set_content(date, vec![date_kw]);
        let geo = doc.child(doc.root(), "geo");
        if rng.gen_bool(0.3) {
            let place = {
                let v = b.analyzer_mut().vocabulary_mut();
                let k = v.intern(&format!("place{}", rng.gen_range(0..50u32)));
                v.add_occurrences(k, 1);
                k
            };
            doc.set_content(geo, vec![place]);
        }
        let tree = b.add_document(doc, Some(author));
        let root = b.doc_root(tree);
        meta.documents += 1;

        // Reply? `reply_ratio` is a fraction of ALL tweets (paper: 6.9%),
        // but only non-retweets (1 − retweet_ratio of tweets) can carry
        // the comment edge, hence the rescaled per-document probability.
        let reply_prob = (config.reply_ratio / (1.0 - config.retweet_ratio).max(1e-9)).min(1.0);
        if !originals.is_empty() && rng.gen_bool(reply_prob) {
            let oi = pick_original(&mut rng, &originals);
            let (target, _) = originals[oi];
            b.add_comment_edge(tree, target);
            meta.replies += 1;
        }
        originals.push((root, 0));
    }

    (b, meta, ontology)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> TwitterConfig {
        let mut c = TwitterConfig::scaled(Scale::Tiny);
        c.users = 60;
        c.tweets = 200;
        c.ontology = OntologyConfig { classes: 10, entities: 50, properties: 4, seed: 3 };
        c
    }

    #[test]
    fn shape_matches_paper_ratios() {
        let ds = generate(&tiny_config());
        let m = ds.meta;
        assert_eq!(m.tweets, 200);
        // 85% retweets, within generous tolerance at this scale.
        let rt = m.retweets as f64 / m.tweets as f64;
        assert!(rt > 0.7 && rt < 0.95, "retweet ratio {rt}");
        assert_eq!(m.documents + m.retweets, m.tweets);
        assert!(m.endorsements == m.retweets);
        // Documents are 3-node trees.
        let stats = ds.instance.stats();
        assert_eq!(stats.documents, m.documents);
        assert_eq!(stats.fragments_non_root, 3 * m.documents);
        assert!(stats.tags >= m.retweets);
    }

    #[test]
    fn social_edges_respect_threshold() {
        let ds = generate(&tiny_config());
        let g = ds.instance.graph();
        for node in g.nodes() {
            if !g.kind(node).is_user() {
                continue;
            }
            for (_, kind, w) in g.out_edges(node) {
                if kind == s3_graph::EdgeKind::Social {
                    assert!((0.1..=1.0).contains(&w), "edge weight {w} below threshold");
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&tiny_config());
        let b = generate(&tiny_config());
        assert_eq!(a.meta.retweets, b.meta.retweets);
        assert_eq!(a.meta.replies, b.meta.replies);
        assert_eq!(a.instance.stats(), b.instance.stats());
    }

    #[test]
    fn replies_create_comment_edges() {
        let ds = generate(&tiny_config());
        assert_eq!(ds.instance.comment_pairs().len(), ds.meta.replies);
    }

    #[test]
    fn entity_mentions_create_semantic_bridge() {
        let ds = generate(&tiny_config());
        // Some class keyword must have a non-trivial extension.
        let grew =
            ds.ontology.class_keywords.iter().any(|&c| ds.instance.expand_keyword(c).len() > 1);
        assert!(grew, "ontology must produce non-trivial extensions");
    }
}
