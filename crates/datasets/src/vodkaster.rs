//! Synthetic I2: the Vodkaster-like instance (paper §5.1).
//!
//! Vodkaster is a French social network about movies. Construction rules
//! from the paper:
//!
//! * `u vdk:follow v 1` for every follower pair (a weight-1 `S3:social`
//!   specialization);
//! * the **first comment of each movie becomes the document**; every later
//!   comment on the movie `S3:commentsOn` the first;
//! * each stemmed sentence of a comment becomes a fragment;
//! * no knowledge base (the corpus is French; the paper left I2
//!   unmatched), and no tags.

use crate::text::TextGen;
use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{InstanceBuilder, S3Instance, UserId};
use s3_doc::DocBuilder;
use s3_text::Language;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct VodkasterConfig {
    /// Number of users (paper: 5,328).
    pub users: usize,
    /// Number of movies (paper: 20,022).
    pub movies: usize,
    /// Mean comments per movie (paper: ≈16.5).
    pub mean_comments: f64,
    /// Sentences per comment (min, max).
    pub sentences: (usize, usize),
    /// Tokens per sentence (min, max).
    pub sentence_len: (usize, usize),
    /// Base vocabulary size.
    pub vocab_size: usize,
    /// Mean follow out-degree (paper: ≈17.7).
    pub mean_follows: usize,
    /// Master seed.
    pub seed: u64,
}

impl VodkasterConfig {
    /// Preset sizes per scale (Small ≈ 1/40 of the crawl).
    pub fn scaled(scale: Scale) -> Self {
        let f = scale.factor();
        VodkasterConfig {
            users: (130.0 * f) as usize + 10,
            movies: (500.0 * f) as usize + 10,
            mean_comments: 8.0,
            sentences: (1, 4),
            sentence_len: (3, 9),
            vocab_size: (3000.0 * f) as usize + 400,
            mean_follows: 17,
            seed: 0x70D6A,
        }
    }
}

impl Default for VodkasterConfig {
    fn default() -> Self {
        VodkasterConfig::scaled(Scale::Small)
    }
}

/// Generation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct VodkasterMeta {
    /// Movies simulated.
    pub movies: usize,
    /// Total comments (documents).
    pub comments: usize,
    /// Follow edges.
    pub follows: usize,
}

/// The generated dataset.
#[derive(Debug)]
pub struct VodkasterDataset {
    /// The frozen instance.
    pub instance: S3Instance,
    /// Generation counters.
    pub meta: VodkasterMeta,
}

/// Generate the Vodkaster-like instance.
pub fn generate(config: &VodkasterConfig) -> VodkasterDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = InstanceBuilder::new(Language::French);
    let mut textgen = TextGen::new("mot", config.vocab_size, 0);

    let users: Vec<UserId> = (0..config.users).map(|_| b.add_user()).collect();

    // Follow graph: preferential attachment (weights are all 1, as in the
    // paper's vdk:follow).
    let mut meta = VodkasterMeta { movies: config.movies, ..VodkasterMeta::default() };
    let mut popularity: Vec<u32> = vec![1; config.users];
    let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for i in 0..config.users {
        let degree = rng.gen_range(1..=config.mean_follows * 2);
        for _ in 0..degree {
            // Preferential target.
            let total: u64 = popularity.iter().map(|&c| c as u64).sum();
            let mut x = rng.gen_range(0..total);
            let mut j = config.users - 1;
            for (cand, &c) in popularity.iter().enumerate() {
                if x < c as u64 {
                    j = cand;
                    break;
                }
                x -= c as u64;
            }
            if i == j || !seen.insert((i, j)) {
                continue;
            }
            b.add_social_edge(users[i], users[j], 1.0);
            popularity[j] += 1;
            meta.follows += 1;
        }
    }

    // Movies: first comment = document; later comments comment on it.
    // Per-movie topic pocket so comments on one movie share vocabulary.
    for m in 0..config.movies {
        let n_comments = 1
            + (rng.gen_range(0.0..1.0f64).powf(2.0) * 2.0 * (config.mean_comments - 1.0)) as usize;
        let topic: Vec<usize> = (0..8).map(|i| (m * 8 + i) % config.vocab_size).collect();
        let mut first_root = None;
        for _ in 0..n_comments {
            let author = users[rng.gen_range(0..config.users)];
            let mut doc = DocBuilder::new("comment");
            let n_sentences = rng.gen_range(config.sentences.0..=config.sentences.1);
            for _ in 0..n_sentences {
                let len = rng.gen_range(config.sentence_len.0..=config.sentence_len.1);
                let kws = textgen.content(&mut b, &mut rng, len, Some(&topic), 0.45, None, 0.0);
                let s = doc.child(doc.root(), "sentence");
                doc.set_content(s, kws);
            }
            let tree = b.add_document(doc, Some(author));
            meta.comments += 1;
            match first_root {
                None => first_root = Some(b.doc_root(tree)),
                Some(root) => b.add_comment_edge(tree, root),
            }
        }
    }

    VodkasterDataset { instance: b.build(), meta }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> VodkasterConfig {
        let mut c = VodkasterConfig::scaled(Scale::Tiny);
        c.users = 30;
        c.movies = 20;
        c
    }

    #[test]
    fn movies_form_single_components() {
        let ds = generate(&tiny());
        let inst = &ds.instance;
        // Comments per movie all collapse into one content component.
        let comps: std::collections::HashSet<_> = inst
            .forest()
            .trees()
            .map(|t| {
                let node = inst.graph().node_of_frag(inst.forest().root(t)).unwrap();
                inst.graph().components().component_of(node)
            })
            .collect();
        assert_eq!(comps.len(), ds.meta.movies.min(comps.len()));
        assert!(comps.len() <= ds.meta.movies);
        assert!(ds.meta.comments >= ds.meta.movies);
    }

    #[test]
    fn follow_edges_have_weight_one() {
        let ds = generate(&tiny());
        let g = ds.instance.graph();
        for node in g.nodes() {
            if !g.kind(node).is_user() {
                continue;
            }
            for (_, kind, w) in g.out_edges(node) {
                if kind == s3_graph::EdgeKind::Social {
                    assert_eq!(w, 1.0);
                }
            }
        }
    }

    #[test]
    fn sentences_are_fragments() {
        let ds = generate(&tiny());
        let stats = ds.instance.stats();
        assert!(stats.fragments_non_root >= stats.documents, "≥1 sentence per comment");
        assert_eq!(stats.tags, 0, "I2 has no tags");
    }

    #[test]
    fn french_language() {
        let ds = generate(&tiny());
        assert_eq!(ds.instance.language(), Language::French);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&tiny()).instance.stats(), generate(&tiny()).instance.stats());
    }
}
