//! Synthetic I3: the Yelp-like instance (paper §5.1).
//!
//! Yelp Dataset Challenge data: textual business reviews plus a friend
//! graph. Construction rules from the paper:
//!
//! * `u yelp:friend v 1` (weight-1 `S3:social` specialization, symmetric);
//! * the first review of a business is the document, subsequent reviews
//!   `S3:commentsOn` it;
//! * reviews are semantically enriched against DBpedia (unlike I2).

use crate::ontology::{Ontology, OntologyConfig};
use crate::text::TextGen;
use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{InstanceBuilder, S3Instance, UserId};
use s3_doc::DocBuilder;
use s3_text::Language;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct YelpConfig {
    /// Number of users (paper: 366,715).
    pub users: usize,
    /// Number of businesses (paper: 61,184).
    pub businesses: usize,
    /// Mean reviews per business (paper: ≈34).
    pub mean_reviews: f64,
    /// Sentences per review (min, max).
    pub sentences: (usize, usize),
    /// Tokens per sentence (min, max).
    pub sentence_len: (usize, usize),
    /// Base vocabulary size.
    pub vocab_size: usize,
    /// Mean friend degree (paper: ≈10.5).
    pub mean_friends: usize,
    /// Probability of an entity mention per token.
    pub entity_prob: f64,
    /// Ontology shape.
    pub ontology: OntologyConfig,
    /// Master seed.
    pub seed: u64,
}

impl YelpConfig {
    /// Preset sizes per scale (Small ≈ 1/500 of the dataset).
    pub fn scaled(scale: Scale) -> Self {
        let f = scale.factor();
        YelpConfig {
            users: (700.0 * f) as usize + 30,
            businesses: (120.0 * f) as usize + 10,
            mean_reviews: 12.0,
            sentences: (1, 5),
            sentence_len: (4, 10),
            vocab_size: (5000.0 * f) as usize + 500,
            mean_friends: 10,
            entity_prob: 0.08,
            ontology: OntologyConfig::default(),
            seed: 0x9E19,
        }
    }
}

impl Default for YelpConfig {
    fn default() -> Self {
        YelpConfig::scaled(Scale::Small)
    }
}

/// Generation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct YelpMeta {
    /// Businesses simulated.
    pub businesses: usize,
    /// Total reviews (documents).
    pub reviews: usize,
    /// Friend edges (undirected pairs).
    pub friend_pairs: usize,
}

/// The generated dataset.
#[derive(Debug)]
pub struct YelpDataset {
    /// The frozen instance.
    pub instance: S3Instance,
    /// Generation counters.
    pub meta: YelpMeta,
    /// The installed ontology.
    pub ontology: Ontology,
}

/// Generate the Yelp-like instance.
pub fn generate(config: &YelpConfig) -> YelpDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = InstanceBuilder::new(Language::English);
    let ontology = Ontology::install(&config.ontology, &mut b);
    let mut textgen = TextGen::new("word", config.vocab_size, config.ontology.entities);

    let users: Vec<UserId> = (0..config.users).map(|_| b.add_user()).collect();

    // Friend graph: symmetric weight-1 edges, preferential attachment.
    let mut meta = YelpMeta { businesses: config.businesses, ..YelpMeta::default() };
    let mut popularity: Vec<u32> = vec![1; config.users];
    let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for i in 0..config.users {
        let degree = rng.gen_range(0..=config.mean_friends * 2);
        for _ in 0..degree {
            let total: u64 = popularity.iter().map(|&c| c as u64).sum();
            let mut x = rng.gen_range(0..total);
            let mut j = config.users - 1;
            for (cand, &c) in popularity.iter().enumerate() {
                if x < c as u64 {
                    j = cand;
                    break;
                }
                x -= c as u64;
            }
            let key = (i.min(j), i.max(j));
            if i == j || !seen.insert(key) {
                continue;
            }
            b.add_social_edge(users[i], users[j], 1.0);
            b.add_social_edge(users[j], users[i], 1.0);
            popularity[i] += 1;
            popularity[j] += 1;
            meta.friend_pairs += 1;
        }
    }

    // Businesses and reviews.
    for biz in 0..config.businesses {
        let n_reviews =
            1 + (rng.gen_range(0.0..1.0f64).powf(2.0) * 2.0 * (config.mean_reviews - 1.0)) as usize;
        let topic: Vec<usize> = (0..10).map(|i| (biz * 10 + i) % config.vocab_size).collect();
        let mut first_root = None;
        for _ in 0..n_reviews {
            let author = users[rng.gen_range(0..config.users)];
            let mut doc = DocBuilder::new("review");
            let n_sentences = rng.gen_range(config.sentences.0..=config.sentences.1);
            for _ in 0..n_sentences {
                let len = rng.gen_range(config.sentence_len.0..=config.sentence_len.1);
                let kws = textgen.content(
                    &mut b,
                    &mut rng,
                    len,
                    Some(&topic),
                    0.4,
                    Some(&ontology),
                    config.entity_prob,
                );
                let s = doc.child(doc.root(), "sentence");
                doc.set_content(s, kws);
            }
            let tree = b.add_document(doc, Some(author));
            meta.reviews += 1;
            match first_root {
                None => first_root = Some(b.doc_root(tree)),
                Some(root) => b.add_comment_edge(tree, root),
            }
        }
    }

    YelpDataset { instance: b.build(), meta, ontology }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> YelpConfig {
        let mut c = YelpConfig::scaled(Scale::Tiny);
        c.users = 50;
        c.businesses = 15;
        c.ontology = OntologyConfig { classes: 8, entities: 40, properties: 3, seed: 1 };
        c
    }

    #[test]
    fn shape() {
        let ds = generate(&tiny());
        let stats = ds.instance.stats();
        assert_eq!(stats.documents, ds.meta.reviews);
        assert_eq!(stats.users, 50);
        assert!(ds.meta.reviews >= ds.meta.businesses);
        // Friend edges are symmetric → social_edges = 2 × pairs.
        assert_eq!(stats.social_edges, 2 * ds.meta.friend_pairs);
    }

    #[test]
    fn businesses_merge_reviews_into_components() {
        let ds = generate(&tiny());
        let inst = &ds.instance;
        let comps: std::collections::HashSet<_> = inst
            .forest()
            .trees()
            .map(|t| {
                let node = inst.graph().node_of_frag(inst.forest().root(t)).unwrap();
                inst.graph().components().component_of(node)
            })
            .collect();
        assert!(comps.len() <= ds.meta.businesses);
    }

    #[test]
    fn semantic_enrichment_present() {
        let ds = generate(&tiny());
        let grew =
            ds.ontology.class_keywords.iter().any(|&c| ds.instance.expand_keyword(c).len() > 1);
        assert!(grew);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&tiny()).instance.stats(), generate(&tiny()).instance.stats());
    }
}
