//! Zipf-distributed sampling (word frequencies in natural text are
//! famously Zipfian; the workload's rare/common quartile split depends on
//! reproducing that skew).

use rand::Rng;

/// A Zipf(s) sampler over ranks `0..n` using precomputed cumulative
/// weights (O(log n) per sample).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Sampler over `n` ranks with exponent `s` (s ≈ 1 for natural text).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one rank in `0..n` (0 = most frequent).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&x).expect("finite")) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        // Roughly Zipfian head: rank 0 ≈ 2× rank 1.
        let ratio = counts[0] as f64 / counts[1].max(1) as f64;
        assert!(ratio > 1.4 && ratio < 3.0, "head ratio {ratio}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> =
            (0..50).scan(StdRng::seed_from_u64(3), |r, _| Some(z.sample(r))).collect();
        let b: Vec<usize> =
            (0..50).scan(StdRng::seed_from_u64(3), |r, _| Some(z.sample(r))).collect();
        assert_eq!(a, b);
    }
}
