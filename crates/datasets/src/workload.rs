//! Query-workload generation (paper §5.1, "Queries").
//!
//! For each instance the paper builds workloads of 100 queries from three
//! parameters: keyword frequency `f ∈ {+, −}` (top / bottom quartile of
//! document frequency), query length `l ∈ {1, 5}` and result size
//! `k ∈ {5, 10}` — eight workloads `qset(f, l, k)` per instance, plus
//! extra `k ∈ {1, 50}` workloads on I1 for Figure 7.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{Query, S3Instance, UserId};
use s3_text::{FrequencyClass, KeywordId};

/// Parameters of one workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Keyword frequency class (`+` = Common, `−` = Rare).
    pub frequency: FrequencyClass,
    /// Keywords per query (paper: 1 or 5).
    pub keywords_per_query: usize,
    /// Result size (paper: 5 or 10; 1..50 for Figure 7).
    pub k: usize,
    /// Number of queries (paper: 100).
    pub queries: usize,
    /// Seed (vary per workload for independence).
    pub seed: u64,
}

/// One generated query plus its provenance.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The runnable query.
    pub query: Query,
}

/// A named batch of queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display label, e.g. `+,1,5` as in the paper's figures.
    pub label: String,
    /// Parameters.
    pub config: WorkloadConfig,
    /// The queries.
    pub queries: Vec<QuerySpec>,
}

impl Workload {
    /// The paper's label notation: `f,l,k` with `f ∈ {+,−}`.
    pub fn paper_label(config: &WorkloadConfig) -> String {
        let f = match config.frequency {
            FrequencyClass::Common => "+",
            FrequencyClass::Rare => "−",
            FrequencyClass::Middle => "~",
        };
        format!("{f},{},{}", config.keywords_per_query, config.k)
    }
}

/// Generate one workload against a frozen instance.
pub fn generate(instance: &S3Instance, config: WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pool: Vec<KeywordId> = instance.vocabulary().keywords_in_class(config.frequency);
    assert!(!pool.is_empty(), "no keywords in class {:?}; corpus too small", config.frequency);
    let pool_set: std::collections::HashSet<KeywordId> = pool.iter().copied().collect();
    let num_comps = instance.graph().components().len();
    let mut queries = Vec::with_capacity(config.queries);
    for _ in 0..config.queries {
        let seeker = UserId(rng.gen_range(0..instance.num_users()) as u32);
        let mut kws = Vec::with_capacity(config.keywords_per_query);
        if config.keywords_per_query > 1 && num_comps > 0 {
            // Multi-keyword queries describe one topic: draw co-occurring
            // keywords from a random content component (falling back to the
            // global pool), so conjunctive matches exist — users search for
            // phrases, not independent random words.
            let comp = s3_graph::CompId(rng.gen_range(0..num_comps) as u32);
            let mut local: Vec<KeywordId> = instance
                .component_keywords(comp)
                .iter()
                .copied()
                .filter(|k| pool_set.contains(k))
                .collect();
            local.sort_unstable();
            while kws.len() < config.keywords_per_query && !local.is_empty() {
                let i = rng.gen_range(0..local.len());
                kws.push(local.swap_remove(i));
            }
        }
        while kws.len() < config.keywords_per_query {
            kws.push(pool[rng.gen_range(0..pool.len())]);
        }
        kws.sort_unstable();
        kws.dedup();
        queries.push(QuerySpec { query: Query::new(seeker, kws, config.k) });
    }
    Workload { label: Workload::paper_label(&config), config, queries }
}

/// The paper's eight `qset(f, l, k)` workloads (§5.1), with
/// `queries_per_workload` queries each.
pub fn paper_workloads(instance: &S3Instance, queries_per_workload: usize) -> Vec<Workload> {
    let mut out = Vec::new();
    let mut seed = 0xBEEF;
    for frequency in [FrequencyClass::Common, FrequencyClass::Rare] {
        for keywords_per_query in [1usize, 5] {
            for k in [5usize, 10] {
                seed += 1;
                out.push(generate(
                    instance,
                    WorkloadConfig {
                        frequency,
                        keywords_per_query,
                        k,
                        queries: queries_per_workload,
                        seed,
                    },
                ));
            }
        }
    }
    out
}

/// The Figure 7 workloads: `l = 1`, `k ∈ {1, 5, 10, 50}`, both frequency
/// classes.
pub fn figure7_workloads(instance: &S3Instance, queries_per_workload: usize) -> Vec<Workload> {
    let mut out = Vec::new();
    let mut seed = 0xF16;
    for frequency in [FrequencyClass::Common, FrequencyClass::Rare] {
        for k in [1usize, 5, 10, 50] {
            seed += 1;
            out.push(generate(
                instance,
                WorkloadConfig {
                    frequency,
                    keywords_per_query: 1,
                    k,
                    queries: queries_per_workload,
                    seed,
                },
            ));
        }
    }
    out
}

/// Average relative growth of query size under keyword extension — the
/// paper reports "+50% on average" for its workloads (§5.1).
pub fn extension_growth(instance: &S3Instance, workloads: &[Workload]) -> f64 {
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    for w in workloads {
        for q in &w.queries {
            for &k in &q.query.keywords {
                total_before += 1;
                total_after += instance.expand_keyword(k).len();
            }
        }
    }
    if total_before == 0 {
        0.0
    } else {
        total_after as f64 / total_before as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twitter::{self, TwitterConfig};
    use crate::Scale;

    fn instance() -> S3Instance {
        let mut c = TwitterConfig::scaled(Scale::Tiny);
        c.users = 50;
        c.tweets = 300;
        twitter::generate(&c).instance
    }

    #[test]
    fn eight_paper_workloads() {
        let inst = instance();
        let ws = paper_workloads(&inst, 10);
        assert_eq!(ws.len(), 8);
        let labels: Vec<&str> = ws.iter().map(|w| w.label.as_str()).collect();
        assert!(labels.contains(&"+,1,5"));
        assert!(labels.contains(&"−,5,10"));
        for w in &ws {
            assert_eq!(w.queries.len(), 10);
            for q in &w.queries {
                assert!(!q.query.keywords.is_empty());
                assert!(q.query.seeker.index() < inst.num_users());
            }
        }
    }

    #[test]
    fn frequency_classes_differ() {
        let inst = instance();
        let common = generate(
            &inst,
            WorkloadConfig {
                frequency: FrequencyClass::Common,
                keywords_per_query: 1,
                k: 5,
                queries: 20,
                seed: 1,
            },
        );
        let rare = generate(
            &inst,
            WorkloadConfig {
                frequency: FrequencyClass::Rare,
                keywords_per_query: 1,
                k: 5,
                queries: 20,
                seed: 1,
            },
        );
        let avg = |w: &Workload| -> f64 {
            let v: Vec<u64> = w
                .queries
                .iter()
                .flat_map(|q| q.query.keywords.iter())
                .map(|&k| inst.vocabulary().frequency(k))
                .collect();
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        assert!(avg(&common) > 3.0 * avg(&rare), "common {} vs rare {}", avg(&common), avg(&rare));
    }

    #[test]
    fn figure7_has_k_sweep() {
        let inst = instance();
        let ws = figure7_workloads(&inst, 5);
        assert_eq!(ws.len(), 8);
        let ks: Vec<usize> = ws.iter().map(|w| w.config.k).collect();
        assert!(ks.contains(&1) && ks.contains(&50));
    }

    #[test]
    fn extension_growth_is_nonnegative() {
        let inst = instance();
        let ws = paper_workloads(&inst, 10);
        let g = extension_growth(&inst, &ws);
        assert!(g >= 0.0);
    }

    #[test]
    fn deterministic() {
        let inst = instance();
        let a = generate(
            &inst,
            WorkloadConfig {
                frequency: FrequencyClass::Common,
                keywords_per_query: 5,
                k: 10,
                queries: 5,
                seed: 42,
            },
        );
        let b = generate(
            &inst,
            WorkloadConfig {
                frequency: FrequencyClass::Common,
                keywords_per_query: 5,
                k: 10,
                queries: 5,
                seed: 42,
            },
        );
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.query.keywords, y.query.keywords);
            assert_eq!(x.query.seeker, y.query.seeker);
        }
    }
}
