//! Query-workload generation (paper §5.1, "Queries").
//!
//! For each instance the paper builds workloads of 100 queries from three
//! parameters: keyword frequency `f ∈ {+, −}` (top / bottom quartile of
//! document frequency), query length `l ∈ {1, 5}` and result size
//! `k ∈ {5, 10}` — eight workloads `qset(f, l, k)` per instance, plus
//! extra `k ∈ {1, 50}` workloads on I1 for Figure 7.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{
    DocRef, FragRef, IngestBatch, IngestDoc, Query, S3Instance, TagSubjectRef, UserId, UserRef,
};
use s3_doc::{DocNodeId, TreeId};
use s3_text::{FrequencyClass, KeywordId};

/// Parameters of one workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Keyword frequency class (`+` = Common, `−` = Rare).
    pub frequency: FrequencyClass,
    /// Keywords per query (paper: 1 or 5).
    pub keywords_per_query: usize,
    /// Result size (paper: 5 or 10; 1..50 for Figure 7).
    pub k: usize,
    /// Number of queries (paper: 100).
    pub queries: usize,
    /// Seed (vary per workload for independence).
    pub seed: u64,
}

/// One generated query plus its provenance.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The runnable query.
    pub query: Query,
}

/// A named batch of queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display label, e.g. `+,1,5` as in the paper's figures.
    pub label: String,
    /// Parameters.
    pub config: WorkloadConfig,
    /// The queries.
    pub queries: Vec<QuerySpec>,
}

impl Workload {
    /// The paper's label notation: `f,l,k` with `f ∈ {+,−}`.
    pub fn paper_label(config: &WorkloadConfig) -> String {
        let f = match config.frequency {
            FrequencyClass::Common => "+",
            FrequencyClass::Rare => "−",
            FrequencyClass::Middle => "~",
        };
        format!("{f},{},{}", config.keywords_per_query, config.k)
    }
}

/// Generate one workload against a frozen instance.
pub fn generate(instance: &S3Instance, config: WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pool: Vec<KeywordId> = instance.vocabulary().keywords_in_class(config.frequency);
    assert!(!pool.is_empty(), "no keywords in class {:?}; corpus too small", config.frequency);
    let pool_set: std::collections::HashSet<KeywordId> = pool.iter().copied().collect();
    let num_comps = instance.graph().components().len();
    let mut queries = Vec::with_capacity(config.queries);
    for _ in 0..config.queries {
        let seeker = UserId(rng.gen_range(0..instance.num_users()) as u32);
        let mut kws = Vec::with_capacity(config.keywords_per_query);
        if config.keywords_per_query > 1 && num_comps > 0 {
            // Multi-keyword queries describe one topic: draw co-occurring
            // keywords from a random content component (falling back to the
            // global pool), so conjunctive matches exist — users search for
            // phrases, not independent random words.
            let comp = s3_graph::CompId(rng.gen_range(0..num_comps) as u32);
            let mut local: Vec<KeywordId> = instance
                .component_keywords(comp)
                .iter()
                .copied()
                .filter(|k| pool_set.contains(k))
                .collect();
            local.sort_unstable();
            while kws.len() < config.keywords_per_query && !local.is_empty() {
                let i = rng.gen_range(0..local.len());
                kws.push(local.swap_remove(i));
            }
        }
        while kws.len() < config.keywords_per_query {
            kws.push(pool[rng.gen_range(0..pool.len())]);
        }
        kws.sort_unstable();
        kws.dedup();
        queries.push(QuerySpec { query: Query::new(seeker, kws, config.k) });
    }
    Workload { label: Workload::paper_label(&config), config, queries }
}

/// The paper's eight `qset(f, l, k)` workloads (§5.1), with
/// `queries_per_workload` queries each.
pub fn paper_workloads(instance: &S3Instance, queries_per_workload: usize) -> Vec<Workload> {
    let mut out = Vec::new();
    let mut seed = 0xBEEF;
    for frequency in [FrequencyClass::Common, FrequencyClass::Rare] {
        for keywords_per_query in [1usize, 5] {
            for k in [5usize, 10] {
                seed += 1;
                out.push(generate(
                    instance,
                    WorkloadConfig {
                        frequency,
                        keywords_per_query,
                        k,
                        queries: queries_per_workload,
                        seed,
                    },
                ));
            }
        }
    }
    out
}

/// The Figure 7 workloads: `l = 1`, `k ∈ {1, 5, 10, 50}`, both frequency
/// classes.
pub fn figure7_workloads(instance: &S3Instance, queries_per_workload: usize) -> Vec<Workload> {
    let mut out = Vec::new();
    let mut seed = 0xF16;
    for frequency in [FrequencyClass::Common, FrequencyClass::Rare] {
        for k in [1usize, 5, 10, 50] {
            seed += 1;
            out.push(generate(
                instance,
                WorkloadConfig {
                    frequency,
                    keywords_per_query: 1,
                    k,
                    queries: queries_per_workload,
                    seed,
                },
            ));
        }
    }
    out
}

/// Average relative growth of query size under keyword extension — the
/// paper reports "+50% on average" for its workloads (§5.1).
pub fn extension_growth(instance: &S3Instance, workloads: &[Workload]) -> f64 {
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    for w in workloads {
        for q in &w.queries {
            for &k in &q.query.keywords {
                total_before += 1;
                total_after += instance.expand_keyword(k).len();
            }
        }
    }
    if total_before == 0 {
        0.0
    } else {
        total_after as f64 / total_before as f64 - 1.0
    }
}

/// Stem-stable word pool the live-update generator writes and queries with
/// (the English stemmer leaves these unchanged, so generated query texts
/// land on generated document keywords).
const LIVE_WORDS: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda", "theta", "zeta",
    "epsilon", "omicron",
];

/// Parameters of a replayable live-update workload: a sequence of
/// [`IngestBatch`]es interleaved with query specs, generated against a
/// growing view of the instance (later batches may reference entities
/// earlier batches created).
#[derive(Debug, Clone, Copy)]
pub struct LiveWorkloadConfig {
    /// Ingest steps to generate.
    pub batches: usize,
    /// New users per batch.
    pub users_per_batch: usize,
    /// New documents per batch.
    pub docs_per_batch: usize,
    /// New tags per batch.
    pub tags_per_batch: usize,
    /// New comment edges per batch.
    pub comments_per_batch: usize,
    /// Document deletions per batch (tombstones a live tree; deleted
    /// documents leave the generator's attach pool, so later steps never
    /// reference dead targets).
    pub deletes_per_batch: usize,
    /// In-place document updates per batch (delete + append with a fresh
    /// stable id, via [`IngestBatch::update_document`]).
    pub updates_per_batch: usize,
    /// Query specs per step.
    pub queries_per_batch: usize,
    /// Result size per query.
    pub k: usize,
    /// Probability that a batch element points at pre-existing data
    /// (social edge from an existing user, tag/comment on an existing
    /// document). `0.0` generates only *detached* batches — the class the
    /// sharded live engine scopes its invalidation for.
    pub attach_probability: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for LiveWorkloadConfig {
    fn default() -> Self {
        LiveWorkloadConfig {
            batches: 4,
            users_per_batch: 2,
            docs_per_batch: 3,
            tags_per_batch: 2,
            comments_per_batch: 1,
            deletes_per_batch: 0,
            updates_per_batch: 0,
            queries_per_batch: 8,
            k: 5,
            attach_probability: 0.3,
            seed: 0x11FE,
        }
    }
}

/// One query of a live workload, as a spec: the text is resolved against
/// whichever snapshot is current when the step replays
/// (`S3Instance::query_keywords`), so the same workload drives a live
/// engine and its cold-rebuild reference identically.
#[derive(Debug, Clone)]
pub struct LiveQuerySpec {
    /// The seeker (guaranteed to exist once the step's batch applied).
    pub seeker: UserId,
    /// Query text.
    pub text: String,
    /// Result size.
    pub k: usize,
}

/// One step of a live workload: ingest `batch`, then run `queries`.
#[derive(Debug, Clone)]
pub struct LiveStep {
    /// The batch to ingest.
    pub batch: IngestBatch,
    /// Queries to run after the ingest (seekers may be batch-new users).
    pub queries: Vec<LiveQuerySpec>,
}

/// Generate a replayable update workload against `instance` (the state the
/// first batch applies to). Deterministic per configuration.
pub fn live_workload(instance: &S3Instance, config: &LiveWorkloadConfig) -> Vec<LiveStep> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut num_users = instance.num_users();
    let mut next_node = instance.forest().num_nodes() as u32;
    let forest = instance.forest();
    // The attach pool: live documents as (tree, root) pairs. Deletions and
    // updates remove entries, so later steps only target surviving trees;
    // appended trees take the next dense id (tombstoned ids stay
    // allocated, so the counter never goes backwards).
    let mut roots: Vec<(TreeId, DocNodeId)> = forest.trees().map(|t| (t, forest.root(t))).collect();
    let mut next_tree = roots.len() as u32;

    let mut steps = Vec::with_capacity(config.batches);
    for _ in 0..config.batches {
        let mut batch = IngestBatch::new();
        let attach =
            |rng: &mut StdRng, ok: bool| ok && rng.gen_bool(config.attach_probability.min(1.0));
        let new_users: Vec<UserRef> =
            (0..config.users_per_batch.max(1)).map(|_| batch.add_user()).collect();
        let any_user = |rng: &mut StdRng, batch_users: &[UserRef]| {
            batch_users[rng.gen_range(0..batch_users.len())]
        };
        // Deletions: tombstone live documents, drawn (and removed) from
        // the attach pool before anything else targets it.
        for _ in 0..config.deletes_per_batch {
            if roots.is_empty() {
                break;
            }
            let (tree, _) = roots.swap_remove(rng.gen_range(0..roots.len()));
            batch.delete_document(tree);
        }
        // Social edges: every new user follows someone.
        for &u in &new_users {
            let to = if attach(&mut rng, num_users > 0) {
                UserRef::Existing(UserId(rng.gen_range(0..num_users) as u32))
            } else {
                any_user(&mut rng, &new_users)
            };
            if to != u {
                batch.add_social_edge(u, to, rng.gen_range(0.1..=1.0));
            }
            if attach(&mut rng, num_users > 0) {
                // An existing user follows back: an *attached* edge (the
                // delta now touches a pre-existing node).
                let from = UserId(rng.gen_range(0..num_users) as u32);
                batch.add_social_edge(UserRef::Existing(from), u, rng.gen_range(0.1..=1.0));
            }
        }
        // Documents.
        let mut batch_docs: Vec<DocRef> = Vec::new();
        let mut batch_doc_lens: Vec<usize> = Vec::new();
        for _ in 0..config.docs_per_batch {
            let mut doc = IngestDoc::new("post");
            let words: Vec<&str> =
                (0..rng.gen_range(2..=5)).map(|_| LIVE_WORDS[zipf_word(&mut rng)]).collect();
            doc.set_text(doc.root(), words.join(" "));
            if rng.gen_bool(0.4) {
                let child = doc.child(doc.root(), "detail");
                doc.set_text(child, LIVE_WORDS[zipf_word(&mut rng)]);
            }
            let poster = if attach(&mut rng, num_users > 0) {
                Some(UserRef::Existing(UserId(rng.gen_range(0..num_users) as u32)))
            } else if rng.gen_bool(0.85) {
                Some(any_user(&mut rng, &new_users))
            } else {
                None
            };
            batch_doc_lens.push(doc.len());
            batch_docs.push(batch.add_document(doc, poster));
        }
        // Updates: replace a live document in place (delete + append with
        // a fresh stable id). The replacement joins the batch's doc pool,
        // so comments and tags below may land on it.
        for _ in 0..config.updates_per_batch {
            if roots.is_empty() {
                break;
            }
            let (tree, _) = roots.swap_remove(rng.gen_range(0..roots.len()));
            let mut doc = IngestDoc::new("post");
            let words: Vec<&str> =
                (0..rng.gen_range(2..=5)).map(|_| LIVE_WORDS[zipf_word(&mut rng)]).collect();
            doc.set_text(doc.root(), words.join(" "));
            let poster = if attach(&mut rng, num_users > 0) {
                Some(UserRef::Existing(UserId(rng.gen_range(0..num_users) as u32)))
            } else {
                Some(any_user(&mut rng, &new_users))
            };
            batch_doc_lens.push(doc.len());
            batch_docs.push(batch.update_document(tree, doc, poster));
        }
        // Comments: batch docs commenting on earlier batch docs or
        // existing roots.
        for _ in 0..config.comments_per_batch {
            if batch_docs.is_empty() {
                break;
            }
            let (ci, target) = if attach(&mut rng, !roots.is_empty()) {
                let ci = rng.gen_range(0..batch_docs.len());
                (ci, FragRef::Existing(roots[rng.gen_range(0..roots.len())].1))
            } else if batch_docs.len() >= 2 {
                // A comment among the batch's own documents keeps the
                // delta detached.
                let ci = rng.gen_range(1..batch_docs.len());
                (ci, FragRef::New { doc: rng.gen_range(0..ci), node: s3_doc::LocalNodeId(0) })
            } else {
                continue;
            };
            batch.add_comment(batch_docs[ci], target);
        }
        // Tags: keyword tags and endorsements, on batch or existing docs.
        for _ in 0..config.tags_per_batch {
            let subject = if attach(&mut rng, !roots.is_empty()) || batch_docs.is_empty() {
                if roots.is_empty() {
                    continue;
                }
                TagSubjectRef::Frag(FragRef::Existing(roots[rng.gen_range(0..roots.len())].1))
            } else {
                TagSubjectRef::Frag(FragRef::New {
                    doc: rng.gen_range(0..batch_docs.len()),
                    node: s3_doc::LocalNodeId(0),
                })
            };
            let author = if attach(&mut rng, num_users > 0) {
                UserRef::Existing(UserId(rng.gen_range(0..num_users) as u32))
            } else {
                any_user(&mut rng, &new_users)
            };
            let keyword = rng.gen_bool(0.7).then(|| LIVE_WORDS[zipf_word(&mut rng)]);
            batch.add_tag(subject, author, keyword);
        }

        // Advance the generator's view of the instance.
        num_users += batch.num_users();
        for len in batch_doc_lens {
            roots.push((TreeId(next_tree), DocNodeId(next_node)));
            next_tree += 1;
            next_node += len as u32;
        }

        // Queries over the post-ingest population.
        let queries = (0..config.queries_per_batch)
            .map(|_| LiveQuerySpec {
                seeker: UserId(rng.gen_range(0..num_users.max(1)) as u32),
                text: LIVE_WORDS[zipf_word(&mut rng)].to_string(),
                k: config.k,
            })
            .collect();
        steps.push(LiveStep { batch, queries });
    }
    steps
}

/// Parameters of a fleet-serving scenario: a query-only warmup phase
/// followed by a live-update workload, all replayable against a fleet of
/// shard servers (or any other engine) from one seed.
#[derive(Debug, Clone, Copy)]
pub struct FleetWorkloadConfig {
    /// Shard-server count the scenario is meant for (recorded in the
    /// spec; generation itself is shard-count independent so the same
    /// scenario can drive fleets of different sizes for comparisons).
    pub shards: usize,
    /// Query specs in the pre-ingest warmup phase.
    pub warmup_queries: usize,
    /// The live phase: ingest batches interleaved with queries
    /// ([`live_workload`]).
    pub live: LiveWorkloadConfig,
}

impl Default for FleetWorkloadConfig {
    fn default() -> Self {
        FleetWorkloadConfig { shards: 2, warmup_queries: 16, live: LiveWorkloadConfig::default() }
    }
}

/// A replayable fleet scenario: warmup queries over the base instance,
/// then [`LiveStep`]s (each an [`IngestBatch`] plus post-ingest queries).
#[derive(Debug, Clone)]
pub struct FleetWorkload {
    /// Intended shard-server count.
    pub shards: usize,
    /// Pre-ingest queries (seekers exist in the base instance).
    pub warmup: Vec<LiveQuerySpec>,
    /// The live phase.
    pub steps: Vec<LiveStep>,
}

/// Generate a fleet scenario against `instance` (the state the warmup
/// queries and the first batch see). Deterministic per configuration;
/// query texts are specs resolved at replay time, exactly like
/// [`live_workload`]'s.
pub fn fleet_workload(instance: &S3Instance, config: &FleetWorkloadConfig) -> FleetWorkload {
    let mut rng = StdRng::seed_from_u64(config.live.seed ^ 0xF1EE7);
    let num_users = instance.num_users().max(1);
    let warmup = (0..config.warmup_queries)
        .map(|_| LiveQuerySpec {
            seeker: UserId(rng.gen_range(0..num_users) as u32),
            text: LIVE_WORDS[zipf_word(&mut rng)].to_string(),
            k: config.live.k,
        })
        .collect();
    FleetWorkload { shards: config.shards, warmup, steps: live_workload(instance, &config.live) }
}

/// Zipf-ish index into [`LIVE_WORDS`]: low indices dominate, so query
/// streams repeat enough for caches to matter.
fn zipf_word(rng: &mut StdRng) -> usize {
    let r: f64 = rng.gen_range(0.0..1.0);
    ((LIVE_WORDS.len() as f64).powf(r) - 1.0) as usize % LIVE_WORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twitter::{self, TwitterConfig};
    use crate::Scale;

    fn instance() -> S3Instance {
        let mut c = TwitterConfig::scaled(Scale::Tiny);
        c.users = 50;
        c.tweets = 300;
        twitter::generate(&c).instance
    }

    #[test]
    fn eight_paper_workloads() {
        let inst = instance();
        let ws = paper_workloads(&inst, 10);
        assert_eq!(ws.len(), 8);
        let labels: Vec<&str> = ws.iter().map(|w| w.label.as_str()).collect();
        assert!(labels.contains(&"+,1,5"));
        assert!(labels.contains(&"−,5,10"));
        for w in &ws {
            assert_eq!(w.queries.len(), 10);
            for q in &w.queries {
                assert!(!q.query.keywords.is_empty());
                assert!(q.query.seeker.index() < inst.num_users());
            }
        }
    }

    #[test]
    fn frequency_classes_differ() {
        let inst = instance();
        let common = generate(
            &inst,
            WorkloadConfig {
                frequency: FrequencyClass::Common,
                keywords_per_query: 1,
                k: 5,
                queries: 20,
                seed: 1,
            },
        );
        let rare = generate(
            &inst,
            WorkloadConfig {
                frequency: FrequencyClass::Rare,
                keywords_per_query: 1,
                k: 5,
                queries: 20,
                seed: 1,
            },
        );
        let avg = |w: &Workload| -> f64 {
            let v: Vec<u64> = w
                .queries
                .iter()
                .flat_map(|q| q.query.keywords.iter())
                .map(|&k| inst.vocabulary().frequency(k))
                .collect();
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        assert!(avg(&common) > 3.0 * avg(&rare), "common {} vs rare {}", avg(&common), avg(&rare));
    }

    #[test]
    fn figure7_has_k_sweep() {
        let inst = instance();
        let ws = figure7_workloads(&inst, 5);
        assert_eq!(ws.len(), 8);
        let ks: Vec<usize> = ws.iter().map(|w| w.config.k).collect();
        assert!(ks.contains(&1) && ks.contains(&50));
    }

    #[test]
    fn extension_growth_is_nonnegative() {
        let inst = instance();
        let ws = paper_workloads(&inst, 10);
        let g = extension_growth(&inst, &ws);
        assert!(g >= 0.0);
    }

    #[test]
    fn live_workload_is_deterministic_and_valid() {
        let inst = instance();
        let config = LiveWorkloadConfig { batches: 3, seed: 9, ..LiveWorkloadConfig::default() };
        let a = live_workload(&inst, &config);
        let b = live_workload(&inst, &config);
        assert_eq!(a.len(), 3);
        let mut users = inst.num_users();
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.batch.num_users(), sb.batch.num_users());
            assert_eq!(sa.batch.num_documents(), sb.batch.num_documents());
            assert!(!sa.batch.is_empty());
            users += sa.batch.num_users();
            for (qa, qb) in sa.queries.iter().zip(&sb.queries) {
                assert_eq!(qa.text, qb.text);
                assert_eq!(qa.seeker, qb.seeker);
                assert!(qa.seeker.index() < users, "seekers exist after the step's ingest");
            }
        }
    }

    #[test]
    fn detached_only_workload_applies_detached() {
        let config = LiveWorkloadConfig {
            batches: 3,
            attach_probability: 0.0,
            seed: 4,
            ..LiveWorkloadConfig::default()
        };
        // Replay through a fresh builder: every batch must classify as
        // detached and apply cleanly.
        let mut b = s3_core::InstanceBuilder::new(s3_text::Language::English);
        let u = b.add_user();
        let kws = b.analyze("alpha beta");
        let mut doc = s3_doc::DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        b.add_document(doc, Some(u));
        let mut prev = b.snapshot();
        for step in live_workload(&prev, &config) {
            let (next, summary) = b.apply(&prev, &step.batch);
            assert!(summary.detached, "attach_probability 0 must yield detached batches");
            prev = next;
        }
    }

    #[test]
    fn mutating_workload_replays_cleanly() {
        let mut c = TwitterConfig::scaled(Scale::Tiny);
        c.users = 50;
        c.tweets = 300;
        let (mut builder, _, _) = twitter::generate_builder(&c);
        let mut prev = builder.snapshot();
        let config = LiveWorkloadConfig {
            batches: 4,
            deletes_per_batch: 2,
            updates_per_batch: 2,
            seed: 21,
            ..LiveWorkloadConfig::default()
        };
        let a = live_workload(&prev, &config);
        let b = live_workload(&prev, &config);
        let mut deleted_total = 0usize;
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.batch.deleted_documents(), sb.batch.deleted_documents());
            assert_eq!(sa.batch.num_documents(), sb.batch.num_documents());
            // deletes + the updates' tombstoned halves.
            assert_eq!(sa.batch.deleted_documents().len(), 4);
            // Every retraction targets a tree that is live going in: the
            // generator's attach pool tracks survivors exactly.
            for &t in sa.batch.deleted_documents() {
                assert!(!builder.document_is_deleted(t), "workload targeted a dead tree");
            }
            deleted_total += sa.batch.deleted_documents().len();
            let (next, _) = builder.apply(&prev, &sa.batch);
            prev = next;
        }
        let (_, dead_docs, _) = builder.dead_counts();
        assert_eq!(dead_docs, deleted_total, "every generated retraction landed");
        assert!(prev.dead_fraction() > 0.0, "mutations leave tombstones behind");
    }

    #[test]
    fn fleet_workload_is_deterministic() {
        let inst = instance();
        let config = FleetWorkloadConfig {
            shards: 4,
            warmup_queries: 5,
            live: LiveWorkloadConfig { batches: 2, seed: 77, ..LiveWorkloadConfig::default() },
        };
        let a = fleet_workload(&inst, &config);
        let b = fleet_workload(&inst, &config);
        assert_eq!(a.shards, 4);
        assert_eq!(a.warmup.len(), 5);
        assert_eq!(a.steps.len(), 2);
        for (qa, qb) in a.warmup.iter().zip(&b.warmup) {
            assert_eq!(qa.seeker, qb.seeker);
            assert_eq!(qa.text, qb.text);
            assert!(qa.seeker.index() < inst.num_users(), "warmup seekers pre-exist");
        }
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert_eq!(sa.batch.num_users(), sb.batch.num_users());
            assert_eq!(sa.queries.len(), sb.queries.len());
        }
    }

    #[test]
    fn deterministic() {
        let inst = instance();
        let a = generate(
            &inst,
            WorkloadConfig {
                frequency: FrequencyClass::Common,
                keywords_per_query: 5,
                k: 10,
                queries: 5,
                seed: 42,
            },
        );
        let b = generate(
            &inst,
            WorkloadConfig {
                frequency: FrequencyClass::Common,
                keywords_per_query: 5,
                k: 10,
                queries: 5,
                seed: 42,
            },
        );
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.query.keywords, y.query.keywords);
            assert_eq!(x.query.seeker, y.query.seeker);
        }
    }
}
