//! Zipf text generation with topical bias and entity mentions.
//!
//! Documents draw their words from a Zipf-distributed base vocabulary, a
//! per-community topic pocket (so that socially-linked users talk about the
//! same things — the correlation that makes social search useful), and the
//! ontology's entities (the §5.1 semantic-enrichment path replaces matched
//! words by their URIs, so entity mentions enter content as URI keywords).

use crate::ontology::Ontology;
use crate::zipf::Zipf;
use rand::Rng;
use s3_core::InstanceBuilder;
use s3_text::KeywordId;

/// Reusable text generator bound to a base vocabulary size.
#[derive(Debug)]
pub struct TextGen {
    prefix: &'static str,
    word_zipf: Zipf,
    entity_zipf: Option<Zipf>,
    /// Interned base words, populated lazily.
    words: Vec<Option<KeywordId>>,
}

impl TextGen {
    /// Generator over `vocab_size` base words named `{prefix}{rank}`.
    pub fn new(prefix: &'static str, vocab_size: usize, entities: usize) -> Self {
        TextGen {
            prefix,
            word_zipf: Zipf::new(vocab_size, 1.05),
            entity_zipf: if entities > 0 { Some(Zipf::new(entities, 1.1)) } else { None },
            words: vec![None; vocab_size],
        }
    }

    /// Intern (once) and return the base word of a rank, counting one
    /// corpus occurrence.
    fn word(&mut self, builder: &mut InstanceBuilder, rank: usize) -> KeywordId {
        let kw = match self.words[rank] {
            Some(kw) => kw,
            None => {
                let text = format!("{}{}", self.prefix, rank);
                let kw = builder.analyzer_mut().vocabulary_mut().intern(&text);
                self.words[rank] = Some(kw);
                kw
            }
        };
        builder.analyzer_mut().vocabulary_mut().add_occurrences(kw, 1);
        kw
    }

    /// Generate the keyword content of one text node.
    ///
    /// * `len` — number of tokens;
    /// * `topic` — optional (community) topic words mixed in with
    ///   probability `topic_prob`;
    /// * `ontology`/`entity_prob` — probability of an entity mention.
    #[allow(clippy::too_many_arguments)]
    pub fn content<R: Rng>(
        &mut self,
        builder: &mut InstanceBuilder,
        rng: &mut R,
        len: usize,
        topic: Option<&[usize]>,
        topic_prob: f64,
        ontology: Option<&Ontology>,
        entity_prob: f64,
    ) -> Vec<KeywordId> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            if let (Some(ont), Some(ez)) = (ontology, self.entity_zipf.as_ref()) {
                if rng.gen_bool(entity_prob) {
                    let e = ez.sample(rng).min(ont.entity_keywords.len().saturating_sub(1));
                    // Texts sometimes mention the *concept* rather than a
                    // specific entity ("university" vs "@UAlberta") — these
                    // class mentions are what query extension later fans
                    // out from.
                    let kw = if rng.gen_bool(0.35) {
                        ont.class_keywords[ont.entity_class[e]]
                    } else {
                        ont.entity_keywords[e]
                    };
                    builder.analyzer_mut().vocabulary_mut().add_occurrences(kw, 1);
                    out.push(kw);
                    continue;
                }
            }
            let rank = match topic {
                Some(words) if !words.is_empty() && rng.gen_bool(topic_prob) => {
                    words[rng.gen_range(0..words.len())]
                }
                _ => self.word_zipf.sample(rng),
            };
            out.push(self.word(builder, rank));
        }
        out
    }

    /// Base vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::OntologyConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s3_text::Language;

    #[test]
    fn generates_counted_keywords() {
        let mut b = InstanceBuilder::new(Language::English);
        let mut gen = TextGen::new("word", 100, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let content = gen.content(&mut b, &mut rng, 20, None, 0.0, None, 0.0);
        assert_eq!(content.len(), 20);
        let inst = b.build();
        let total: u64 = content.iter().map(|&k| inst.vocabulary().frequency(k)).sum();
        assert!(total >= 20, "every token counted at least once");
    }

    #[test]
    fn entity_mentions_appear() {
        let mut b = InstanceBuilder::new(Language::English);
        let ont = Ontology::install(
            &OntologyConfig { classes: 5, entities: 10, properties: 0, seed: 0 },
            &mut b,
        );
        let mut gen = TextGen::new("word", 100, 10);
        let mut rng = StdRng::seed_from_u64(5);
        let content = gen.content(&mut b, &mut rng, 200, None, 0.0, Some(&ont), 0.5);
        let entity_hits = content.iter().filter(|k| ont.entity_keywords.contains(k)).count();
        assert!(entity_hits > 40, "≈50% entity rate, got {entity_hits}/200");
    }

    #[test]
    fn topic_words_bias_content() {
        let mut b = InstanceBuilder::new(Language::English);
        let mut gen = TextGen::new("word", 1000, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let topic = vec![990, 991, 992]; // rare ranks: only topic bias reaches them
        let content = gen.content(&mut b, &mut rng, 300, Some(&topic), 0.5, None, 0.0);
        let inst_vocab = b.analyzer_mut().vocabulary_mut();
        let topical = content
            .iter()
            .filter(|&&k| {
                let t = inst_vocab.text(k);
                t == "word990" || t == "word991" || t == "word992"
            })
            .count();
        assert!(topical > 100, "topic bias too weak: {topical}/300");
    }
}
