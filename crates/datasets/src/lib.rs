//! Synthetic dataset generators standing in for the paper's three crawls
//! (§5.1), plus the query-workload generator.
//!
//! The paper evaluates on three real datasets that cannot be redistributed:
//! a one-day Twitter crawl (I1), a Vodkaster dump (I2, French) and the Yelp
//! Dataset Challenge (I3). This crate builds **seeded synthetic instances
//! with the same construction rules and the same shape parameters** (see
//! the substitution table in DESIGN.md):
//!
//! * [`twitter`] — 3-node tweet documents (text/date/geo), ~85% retweets
//!   modeled as hashtag tags + endorsements on the retweeted tweet, ~6.9%
//!   replies as `S3:commentsOn`, DBpedia-style semantic enrichment, and
//!   Jaccard-similarity user edges with the paper's 0.1 threshold;
//! * [`vodkaster`] — movies whose first comment is the document, later
//!   comments comment on the first, one fragment per sentence, `follow`
//!   edges of weight 1, **no** knowledge base (the paper did not match the
//!   French corpus against one);
//! * [`yelp`] — businesses with chained reviews, friend edges of weight 1,
//!   semantic enrichment on;
//! * [`ontology`] — the DBpedia stand-in: a class tree (`≺sc`), typed
//!   entities with `foaf:name` surface forms that the text generator
//!   injects into documents (the entity-linking path of §5.1);
//! * [`text`] — Zipf-distributed vocabulary and sentence generation;
//! * [`workload`] — the paper's `qset(f, l, k)` workloads: `f` ∈ {rare,
//!   common} keyword frequency class, `l` ∈ {1, 5} keywords, `k` ∈ {1, 5,
//!   10, 50} results, 100 queries each (§5.1 "Queries").
//!
//! Everything is deterministic given a seed.

#![warn(missing_docs)]
pub mod ontology;
pub mod text;
pub mod twitter;
pub mod vodkaster;
pub mod workload;
pub mod yelp;
pub mod zipf;

pub use ontology::{Ontology, OntologyConfig};
pub use text::TextGen;
pub use twitter::{TwitterConfig, TwitterDataset};
pub use vodkaster::{VodkasterConfig, VodkasterDataset};
pub use workload::{QuerySpec, Workload, WorkloadConfig};
pub use yelp::{YelpConfig, YelpDataset};
pub use zipf::Zipf;

/// Preset scales for the three instances. `tiny` is for unit tests,
/// `small` for the default benchmark harness run, `medium` for longer
/// harness runs; the paper-size instances are reachable by scaling the
/// individual configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few dozen users — unit tests.
    Tiny,
    /// Hundreds of users — quick benchmark runs.
    Small,
    /// Thousands of users — representative benchmark runs.
    Medium,
}

impl Scale {
    /// Multiplier applied to the baseline (Small) sizes.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.1,
            Scale::Small => 1.0,
            Scale::Medium => 5.0,
        }
    }
}
