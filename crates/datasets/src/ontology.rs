//! DBpedia stand-in (DESIGN.md substitution table).
//!
//! The paper enriched tweet and review text against DBpedia (Mapping-based
//! Types/Properties, Persondata, Lexicalizations): words `w` with
//! `u foaf:name w` were replaced by the entity URI `u`, and queries were
//! expanded through `Ext(k)` over the class hierarchy. What S3k's behaviour
//! depends on is (a) how often text mentions a typed entity and (b) the
//! fan-out of `Ext`, both of which this generator controls.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::InstanceBuilder;
use s3_rdf::{vocabulary as voc, Term};
use s3_text::KeywordId;

/// Shape of the generated ontology.
#[derive(Debug, Clone, Copy)]
pub struct OntologyConfig {
    /// Number of classes in the `≺sc` tree.
    pub classes: usize,
    /// Number of typed entities.
    pub entities: usize,
    /// Number of relation properties arranged in `≺sp` chains.
    pub properties: usize,
    /// Seed for the shape.
    pub seed: u64,
}

impl Default for OntologyConfig {
    fn default() -> Self {
        OntologyConfig { classes: 60, entities: 400, properties: 12, seed: 0xD8BED1A }
    }
}

/// The generated ontology: URIs plus their keyword bridge, after
/// installation into an [`InstanceBuilder`].
#[derive(Debug)]
pub struct Ontology {
    /// Keyword of each class URI (classes can be queried directly).
    pub class_keywords: Vec<KeywordId>,
    /// Keyword of each entity URI (entities appear in text).
    pub entity_keywords: Vec<KeywordId>,
    /// Class index of each entity.
    pub entity_class: Vec<usize>,
    /// Parent class of each class (`None` for roots).
    pub class_parent: Vec<Option<usize>>,
}

impl Ontology {
    /// Generate and install: adds the `≺sc`/`type`/`≺sp` triples to the
    /// builder's RDF store and interns every URI as an entity keyword.
    pub fn install(config: &OntologyConfig, builder: &mut InstanceBuilder) -> Ontology {
        let mut rng = StdRng::seed_from_u64(config.seed);
        assert!(config.classes > 0, "need at least one class");

        // Class tree: each class after the first few roots picks an earlier
        // parent, biased toward the roots so the tree is shallow and wide
        // (DBpedia's ontology is ~7 levels for hundreds of classes).
        let mut class_parent: Vec<Option<usize>> = Vec::with_capacity(config.classes);
        for i in 0..config.classes {
            if i < 3 {
                class_parent.push(None);
            } else {
                let parent = rng.gen_range(0..i.min(3 + i / 2));
                class_parent.push(Some(parent));
            }
        }

        let mut class_keywords = Vec::with_capacity(config.classes);
        let mut class_uris = Vec::with_capacity(config.classes);
        for i in 0..config.classes {
            let uri = format!("dbp:Class{i}");
            let kw = builder.intern_entity_keyword(&uri);
            class_keywords.push(kw);
            class_uris.push(uri);
        }
        for (i, parent) in class_parent.iter().enumerate() {
            if let Some(p) = parent {
                let (s, o) = {
                    let d = builder.rdf_mut().dictionary_mut();
                    (d.intern(&class_uris[i]), d.intern(&class_uris[*p]))
                };
                builder.rdf_mut().insert(s, voc::RDFS_SUBCLASS_OF, Term::Uri(o), 1.0);
            }
        }

        // Entities: typed by a random class; the URI doubles as the
        // `foaf:name`-matched surface form (entity-linking replaces the
        // word with the URI, so only the URI ever reaches the keyword set).
        let mut entity_keywords = Vec::with_capacity(config.entities);
        let mut entity_class = Vec::with_capacity(config.entities);
        for j in 0..config.entities {
            let class = rng.gen_range(0..config.classes);
            let uri = format!("dbp:e{j}");
            let kw = builder.intern_entity_keyword(&uri);
            let (s, c) = {
                let d = builder.rdf_mut().dictionary_mut();
                (d.intern(&uri), d.intern(&class_uris[class]))
            };
            builder.rdf_mut().insert(s, voc::RDF_TYPE, Term::Uri(c), 1.0);
            // foaf:name for the record (exercises the enrichment path).
            let name =
                Term::Literal(builder.rdf_mut().dictionary_mut().intern(&format!("\"e{j}\"")));
            builder.rdf_mut().insert(s, voc::FOAF_NAME, name, 1.0);
            entity_keywords.push(kw);
            entity_class.push(class);
        }

        // Relation properties in ≺sp chains of length 2–3 (they exercise
        // the subproperty rules; instance data rarely queries them).
        let mut prev: Option<s3_rdf::UriId> = None;
        for p in 0..config.properties {
            let uri = builder.rdf_mut().dictionary_mut().intern(&format!("dbp:p{p}"));
            if let Some(parent) = prev {
                if p % 3 != 0 {
                    builder.rdf_mut().insert(uri, voc::RDFS_SUBPROPERTY_OF, Term::Uri(parent), 1.0);
                }
            }
            prev = Some(uri);
        }

        Ontology { class_keywords, entity_keywords, entity_class, class_parent }
    }

    /// Entities belonging to `class` or any of its subclasses — i.e. the
    /// entity keywords `Ext(class)` will reach after saturation.
    pub fn entities_under(&self, class: usize) -> Vec<usize> {
        let mut in_subtree = vec![false; self.class_parent.len()];
        in_subtree[class] = true;
        // Parents precede children in generation order, so one pass works.
        for i in 0..self.class_parent.len() {
            if let Some(p) = self.class_parent[i] {
                if in_subtree[p] {
                    in_subtree[i] = true;
                }
            }
        }
        self.entity_class
            .iter()
            .enumerate()
            .filter(|(_, &c)| in_subtree[c])
            .map(|(e, _)| e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_text::Language;

    #[test]
    fn installs_a_consistent_hierarchy() {
        let mut b = InstanceBuilder::new(Language::English);
        let config = OntologyConfig { classes: 10, entities: 30, properties: 5, seed: 1 };
        let ont = Ontology::install(&config, &mut b);
        assert_eq!(ont.class_keywords.len(), 10);
        assert_eq!(ont.entity_keywords.len(), 30);
        let inst = b.build();
        // After saturation, Ext of a root class reaches entities typed by
        // its descendants.
        let root = ont.class_parent.iter().position(|p| p.is_none()).expect("at least one root");
        let under = ont.entities_under(root);
        let ext = inst.expand_keyword(ont.class_keywords[root]);
        for &e in &under {
            assert!(
                ext.contains(&ont.entity_keywords[e]),
                "entity {e} typed under root {root} missing from Ext"
            );
        }
    }

    #[test]
    fn extension_respects_specialization_direction() {
        let mut b = InstanceBuilder::new(Language::English);
        let config = OntologyConfig { classes: 8, entities: 20, properties: 3, seed: 2 };
        let ont = Ontology::install(&config, &mut b);
        let inst = b.build();
        // An entity's extension never contains its class (no
        // generalization — Definition 2.1).
        for (e, &kw) in ont.entity_keywords.iter().enumerate() {
            let ext = inst.expand_keyword(kw);
            assert!(
                !ext.contains(&ont.class_keywords[ont.entity_class[e]]),
                "Ext(entity) must not generalize to its class"
            );
        }
    }

    #[test]
    fn deterministic() {
        let build = || {
            let mut b = InstanceBuilder::new(Language::English);
            let ont = Ontology::install(&OntologyConfig::default(), &mut b);
            (ont.entity_class, ont.class_parent)
        };
        assert_eq!(build(), build());
    }
}
