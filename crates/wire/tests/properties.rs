//! Wire-format properties: (1) arbitrary byte strings never panic the
//! decoder — every outcome is a value or a `WireError`, never UB or an
//! abort; (2) encode→decode is the identity for every message type over
//! arbitrary contents (candidate pools, selections, ingest batches);
//! (3) framing honors the length prefix and the `MAX_FRAME` cap.
//!
//! Structured inputs are generated from a per-case seed with `StdRng`
//! (the proptest shim has no combinators), so every failure reproduces.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{DocRef, FragRef, TagId, TagRef, TagSubjectRef, UserId, UserRef};
use s3_doc::{DocNodeId, LocalNodeId, TreeId};
use s3_wire::{
    peek_tag, read_frame, write_frame, CompactAck, IngestAck, Message, RequestBuf, RoundReply,
    SelectionEntry, Start, StopCheck, WireDoc, WireError, WireIngest, MAX_FRAME,
};

// ---- generators ---------------------------------------------------------

/// Any bit pattern except NaN (NaN breaks the `PartialEq` identity
/// assertion, not the codec — `f64_bits_survive` covers those bits).
fn wire_f64(rng: &mut StdRng) -> f64 {
    loop {
        let f = f64::from_bits(rng.gen::<u64>());
        if !f.is_nan() {
            return f;
        }
    }
}

fn word(rng: &mut StdRng, max_len: usize) -> String {
    let n = rng.gen_range(0..=max_len);
    (0..n).map(|_| rng.gen_range(b'a'..=b'z') as char).collect()
}

fn user_ref(rng: &mut StdRng) -> UserRef {
    if rng.gen_bool(0.5) {
        UserRef::Existing(UserId(rng.gen()))
    } else {
        UserRef::New(rng.gen::<u64>() as usize)
    }
}

fn doc_ref(rng: &mut StdRng) -> DocRef {
    if rng.gen_bool(0.5) {
        DocRef::Existing(TreeId(rng.gen()))
    } else {
        DocRef::New(rng.gen::<u64>() as usize)
    }
}

fn frag_ref(rng: &mut StdRng) -> FragRef {
    if rng.gen_bool(0.5) {
        FragRef::Existing(DocNodeId(rng.gen()))
    } else {
        FragRef::New { doc: rng.gen::<u64>() as usize, node: LocalNodeId(rng.gen()) }
    }
}

fn tag_subject(rng: &mut StdRng) -> TagSubjectRef {
    match rng.gen_range(0..3) {
        0 => TagSubjectRef::Frag(frag_ref(rng)),
        1 => TagSubjectRef::Tag(TagRef::Existing(TagId(rng.gen()))),
        _ => TagSubjectRef::Tag(TagRef::New(rng.gen::<u64>() as usize)),
    }
}

/// A structurally valid document tree: node 0 is the root, every later
/// node's parent precedes it, texts address distinct existing nodes
/// (`IngestDoc::set_text` replaces repeats, so duplicate text nodes would
/// not round-trip verbatim).
fn wire_doc(rng: &mut StdRng) -> WireDoc {
    let n = rng.gen_range(1..6usize);
    let nodes = (0..n)
        .map(|i| {
            let parent = if i == 0 { 0 } else { rng.gen_range(0..i) as u32 };
            (parent, word(rng, 6))
        })
        .collect();
    let mut text_nodes: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect();
    // Texts replay in arbitrary node order.
    for i in (1..text_nodes.len()).rev() {
        text_nodes.swap(i, rng.gen_range(0..=i));
    }
    let texts = text_nodes.into_iter().map(|node| (node, word(rng, 8))).collect();
    let poster = rng.gen_bool(0.7).then(|| user_ref(rng));
    WireDoc { nodes, texts, poster }
}

fn wire_ingest(rng: &mut StdRng) -> WireIngest {
    WireIngest {
        // Small: `to_batch` replays this through `add_user` calls.
        new_users: rng.gen_range(0..20u64),
        social_edges: (0..rng.gen_range(0..5usize))
            .map(|_| (user_ref(rng), user_ref(rng), wire_f64(rng)))
            .collect(),
        documents: (0..rng.gen_range(0..4usize)).map(|_| wire_doc(rng)).collect(),
        comments: (0..rng.gen_range(0..4usize)).map(|_| (doc_ref(rng), frag_ref(rng))).collect(),
        tags: (0..rng.gen_range(0..4usize))
            .map(|_| (tag_subject(rng), user_ref(rng), rng.gen_bool(0.7).then(|| word(rng, 5))))
            .collect(),
        delete_users: (0..rng.gen_range(0..4usize)).map(|_| rng.gen()).collect(),
        delete_documents: (0..rng.gen_range(0..4usize)).map(|_| rng.gen()).collect(),
        delete_tags: (0..rng.gen_range(0..4usize)).map(|_| rng.gen()).collect(),
        remove_social_edges: (0..rng.gen_range(0..4usize))
            .map(|_| (rng.gen(), rng.gen()))
            .collect(),
        remove_comments: (0..rng.gen_range(0..4usize)).map(|_| (rng.gen(), rng.gen())).collect(),
    }
}

fn round_reply(rng: &mut StdRng) -> RoundReply {
    RoundReply {
        no_match: rng.gen(),
        iteration: rng.gen(),
        threshold: wire_f64(rng),
        frontier_closed: rng.gen(),
        candidates: rng.gen(),
        rejected: rng.gen(),
        components: rng.gen(),
        pruned: rng.gen(),
        admitted: (0..rng.gen_range(0..8usize)).map(|_| (rng.gen(), rng.gen())).collect(),
        selection: (0..rng.gen_range(0..8usize))
            .map(|_| SelectionEntry {
                index: rng.gen(),
                doc: rng.gen(),
                lower: wire_f64(rng),
                upper: wire_f64(rng),
            })
            .collect(),
    }
}

/// One random message of any of the eleven protocol kinds (snapshot
/// shipping aside).
fn message(rng: &mut StdRng) -> Message {
    match rng.gen_range(0..11) {
        0 => Message::Start(Start {
            seeker: rng.gen(),
            k: rng.gen(),
            keywords: (0..rng.gen_range(0..6usize)).map(|_| rng.gen()).collect(),
        }),
        1 => Message::NextRound,
        2 => Message::StopCheck(StopCheck {
            merged_full: rng.gen(),
            min_lower: wire_f64(rng),
            selected: (0..rng.gen_range(0..6usize)).map(|_| rng.gen()).collect(),
        }),
        3 => Message::EndQuery,
        4 => Message::Ingest(wire_ingest(rng)),
        5 => Message::Shutdown,
        6 => Message::Round(round_reply(rng)),
        7 => Message::Vote(wire_f64(rng)),
        8 => Message::IngestAck(IngestAck {
            detached: rng.gen(),
            epoch: rng.gen(),
            nodes: rng.gen(),
            touched: rng.gen(),
        }),
        9 => Message::Compact,
        _ => Message::CompactAck(CompactAck {
            epoch: rng.gen(),
            nodes: rng.gen(),
            users: rng.gen(),
            docs: rng.gen(),
            connections: rng.gen(),
        }),
    }
}

// ---- properties ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Arbitrary bytes never panic any decode entry point.
    #[test]
    fn arbitrary_bytes_never_panic(seed in 0u64..1u64 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..256usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        let _ = peek_tag(&bytes);
        let _ = Message::decode(&bytes);
        let _ = RequestBuf::default().read(&bytes);
        let mut reply = RoundReply::default();
        let _ = reply.decode_into(&bytes);
        let mut ingest = WireIngest::default();
        let _ = ingest.decode_into(&bytes);
        let mut buf = Vec::new();
        let _ = read_frame(&mut bytes.as_slice(), &mut buf);
    }

    /// Flipping any one byte of a valid encoding never panics either (the
    /// adversarial neighborhood of real traffic — much denser in
    /// near-valid prefixes than uniform noise).
    #[test]
    fn corrupted_frames_never_panic(seed in 0u64..1u64 << 32) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let mut frame = Vec::new();
        message(&mut rng).encode(&mut frame);
        let i = rng.gen_range(0..frame.len());
        frame[i] ^= rng.gen_range(1..=255u8);
        let _ = Message::decode(&frame);
        let _ = RequestBuf::default().read(&frame);
    }

    /// encode → decode is the identity for every message type.
    #[test]
    fn encode_decode_is_identity(seed in 0u64..1u64 << 32) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1D);
        let msg = message(&mut rng);
        let mut frame = Vec::new();
        msg.encode(&mut frame);
        let back = Message::decode(&frame).expect("own encoding must decode");
        prop_assert_eq!(back, msg);
    }

    /// Ingest batches survive the full wire → batch → wire round trip
    /// (the shape shipped to every shard replica).
    #[test]
    fn ingest_batch_round_trips(seed in 0u64..1u64 << 32) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
        let wire = wire_ingest(&mut rng);
        let batch = wire.to_batch();
        let again = WireIngest::from_batch(&batch);
        prop_assert_eq!(again, wire);
    }

    /// Framing: what `write_frame` produces, `read_frame` returns intact.
    #[test]
    fn frames_round_trip(seed in 0u64..1u64 << 32) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF2A);
        let len = rng.gen_range(0..512usize);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).expect("write to Vec");
        let mut out = Vec::new();
        read_frame(&mut stream.as_slice(), &mut out).expect("read own frame");
        prop_assert_eq!(out, payload);
    }

    /// f64 round-trips bit-for-bit — including NaN payloads, which the
    /// identity tests above exclude only because of `PartialEq`.
    #[test]
    fn f64_bits_survive(bits in 0u64..=u64::MAX) {
        let reply = RoundReply { threshold: f64::from_bits(bits), ..RoundReply::default() };
        let mut frame = Vec::new();
        reply.encode(&mut frame);
        let mut back = RoundReply::default();
        back.decode_into(&frame).expect("own encoding must decode");
        prop_assert_eq!(back.threshold.to_bits(), bits);
    }
}

#[test]
fn oversized_declared_length_is_rejected() {
    let mut stream = Vec::new();
    stream.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    stream.extend_from_slice(&[0u8; 16]);
    let mut out = Vec::new();
    match read_frame(&mut stream.as_slice(), &mut out) {
        Err(WireError::FrameTooLarge(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

#[test]
fn wrong_version_is_rejected() {
    let mut frame = Vec::new();
    Message::Shutdown.encode(&mut frame);
    frame[0] ^= 0x40;
    match Message::decode(&frame) {
        Err(WireError::Version(_)) => {}
        other => panic!("expected Version error, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut frame = Vec::new();
    Message::Vote(1.0).encode(&mut frame);
    frame.push(0);
    match Message::decode(&frame) {
        Err(WireError::TrailingBytes(1)) => {}
        other => panic!("expected TrailingBytes(1), got {other:?}"),
    }
}
