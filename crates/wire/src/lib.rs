//! Wire protocol for the cross-process scatter-gather fleet.
//!
//! The iteration-synchronous sharded search (`s3_core::search::partitioned`
//! and its per-shard executor `s3_core::FleetShard`) exchanges four tiny
//! messages per round: a request to advance, the shard's newly-admitted
//! candidates + current selection, the merged global stop probe, and a
//! per-shard stop vote. This crate gives those messages (plus
//! [`s3_core::IngestBatch`] shipping and epoch bumps) a hand-rolled,
//! versioned, length-prefixed binary form, and provides the
//! [`ShardTransport`] abstraction the fleet client drives:
//!
//! * [`FramedTransport`] over any `Read + Write` stream — in particular a
//!   unix-domain socket ([`std::os::unix::net::UnixStream`]) or an
//!   in-memory [`LoopbackConn`] duplex pair for offline tests;
//! * a zero-copy in-process implementation lives in `s3_engine::LocalShard`.
//!
//! # Framing
//!
//! ```text
//! ┌───────────────┬─────────┬──────┬──────────────────────┐
//! │ len: u32 LE   │ version │ tag  │ body (len - 2 bytes) │
//! └───────────────┴─────────┴──────┴──────────────────────┘
//! ```
//!
//! `len` counts the version + tag + body bytes and is capped at
//! [`MAX_FRAME`]. Integers in bodies are LEB128 varints, `f64`s are their
//! IEEE bits little-endian (bit-exact round trip — the byte-identity
//! property bar depends on it), strings are varint-length-prefixed UTF-8.
//!
//! # Versioning rule
//!
//! [`WIRE_VERSION`] is a single byte checked on every frame; any change to
//! any message body bumps it. There are no compatibility shims yet: a
//! mismatch is a hard [`WireError::Version`] and the fleet refuses to
//! start. (Rolling upgrades can add per-tag negotiation later without
//! changing the frame header.)
//!
//! Decoding is panic-free by construction: every length is bounds-checked
//! against the remaining frame before any allocation, and structural
//! indices (document tree parents, text node ids) are validated so a
//! decoded [`WireIngest`] can always be replayed through the public
//! [`s3_core::IngestBatch`] builder API. The proptest suite feeds the
//! decoder arbitrary byte strings to keep it that way.

#![warn(missing_docs)]

mod codec;
mod frame;
mod msg;
mod transport;

pub use codec::Reader;
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use msg::{
    encode_snapshot_chunk, peek_tag, tag, CompactAck, IngestAck, Message, RequestBuf, RequestKind,
    RoundReply, SelectionEntry, Snapshot, SnapshotAck, SnapshotChunk, Start, StopCheck, WireDoc,
    WireIngest, SNAPSHOT_CHUNK_BYTES, WIRE_VERSION,
};
pub use transport::{loopback_pair, FramedTransport, LoopbackConn, ShardTransport, TransportStats};

/// Errors produced while encoding, decoding or transporting frames.
#[derive(Debug)]
pub enum WireError {
    /// Clean end-of-stream between frames (the peer hung up).
    Eof,
    /// The stream or frame ended in the middle of a value.
    Truncated,
    /// The frame's version byte does not match [`WIRE_VERSION`].
    Version(u8),
    /// Unknown or unexpected message tag.
    Tag(u8),
    /// A decoded value is structurally invalid (bad enum discriminant,
    /// out-of-range index, non-UTF-8 string, ...).
    Value(&'static str),
    /// The frame length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// A message body left undecoded trailing bytes.
    TrailingBytes(usize),
    /// The peer violated the request/reply protocol (e.g. replied with the
    /// wrong message kind, or shard acks diverged after an ingest).
    Protocol(&'static str),
    /// Underlying transport I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "end of stream"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Version(v) => {
                write!(f, "wire version mismatch: got {v}, expected {}", msg::WIRE_VERSION)
            }
            WireError::Tag(t) => write!(f, "unknown or unexpected message tag {t}"),
            WireError::Value(what) => write!(f, "invalid value: {what}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message body"),
            WireError::Protocol(what) => write!(f, "protocol violation: {what}"),
            WireError::Io(e) => write!(f, "transport i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}
