//! Primitive value encoding: LEB128 varints, bit-exact `f64`s,
//! length-prefixed strings, and a bounds-checked [`Reader`].

use crate::WireError;

pub(crate) fn put_u64v(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn put_u32v(out: &mut Vec<u8>, v: u32) {
    put_u64v(out, v as u64);
}

pub(crate) fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64v(out, v as u64);
}

/// `f64`s travel as their IEEE-754 bits, little-endian: the round trip is
/// bit-exact, which the fleet's byte-identity bar requires.
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over one frame's bytes. Every read checks bounds first; no
/// method panics on malformed input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a frame payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Value("boolean byte not 0/1")),
        }
    }

    pub(crate) fn u64v(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return Err(WireError::Value("varint overflows u64"));
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::Value("varint longer than 10 bytes"))
    }

    pub(crate) fn u32v(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.u64v()?).map_err(|_| WireError::Value("varint overflows u32"))
    }

    pub(crate) fn usize_v(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64v()?).map_err(|_| WireError::Value("varint overflows usize"))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        if self.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// A varint-length-prefixed byte string, borrowed from the frame.
    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.usize_v()?;
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(bytes)
    }

    pub(crate) fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.usize_v()?;
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        std::str::from_utf8(bytes).map_err(|_| WireError::Value("string is not UTF-8"))
    }

    /// Read a sequence length and reject it outright when even
    /// `min_elem_bytes` per element cannot fit in the remaining frame —
    /// the guard that keeps hostile lengths from pre-allocating.
    pub(crate) fn seq(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.usize_v()?;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(len)
    }

    /// Error unless the whole frame was consumed.
    pub(crate) fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }
}
