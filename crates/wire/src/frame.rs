//! Stream framing: `[u32 LE length][payload]` with a hard size cap.

use crate::WireError;
use std::io::{Read, Write};

/// Largest accepted frame payload (version + tag + body), 64 MiB. Large
/// enough for any realistic [`crate::WireIngest`]; small enough that a
/// corrupt length prefix cannot ask the decoder for an absurd allocation.
pub const MAX_FRAME: u32 = 1 << 26;

/// Write one frame: length prefix + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    debug_assert!(payload.len() <= MAX_FRAME as usize, "oversized outbound frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one frame's payload into `buf` (reused across calls).
///
/// A clean end-of-stream *between* frames is [`WireError::Eof`]; running
/// dry mid-frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<(), WireError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 { WireError::Eof } else { WireError::Truncated });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(())
}
