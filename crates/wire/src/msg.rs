//! Message bodies for the per-round fleet exchange and ingest shipping.
//!
//! Every reply-carrying struct decodes *into* `&mut self` so the fleet
//! client and shard servers reuse one buffer per message kind across
//! rounds — no per-round `Vec` churn on the hot path.

use crate::codec::{put_bool, put_f64, put_str, put_u32v, put_u64v, put_usize, Reader};
use crate::WireError;
use s3_core::{
    DocRef, FragRef, IngestBatch, IngestDoc, TagId, TagRef, TagSubjectRef, UserId, UserRef,
};
use s3_doc::{DocNodeId, LocalNodeId, TreeId};

/// Protocol version; bumped on *any* body change (see crate docs).
/// Version 2: the stop-check reply ([`tag::VOTE`]) carries the shard's
/// certified rival upper bound (f64) instead of a boolean vote.
/// Version 3: snapshot bootstrap frames ([`tag::SNAPSHOT`],
/// [`tag::SNAPSHOT_CHUNK`], [`tag::SNAPSHOT_ACK`]) let the fleet client
/// ship a full instance snapshot to shard servers instead of every
/// replica regenerating from an identically-seeded builder.
/// Version 4: ingest bodies carry retraction lists (deleted users,
/// documents and tags, removed social and comment edges), and a
/// compaction request/acknowledgement pair ([`tag::COMPACT`],
/// [`tag::COMPACT_ACK`]) lets the fleet client drive the off-path
/// rebuild on every replica and cross-check the resulting fingerprints.
pub const WIRE_VERSION: u8 = 4;

/// Payload bytes per [`SnapshotChunk`] frame (8 MiB — comfortably under
/// [`crate::frame::MAX_FRAME`], so a shipped snapshot of any size frames
/// cleanly).
pub const SNAPSHOT_CHUNK_BYTES: usize = 1 << 23;

/// Message tags. Requests are low numbers, replies start at 64.
pub mod tag {
    /// Begin a query round 0 ([`super::Start`]).
    pub const START: u8 = 1;
    /// Advance the propagation one step and run the next round.
    pub const NEXT_ROUND: u8 = 2;
    /// Global stop probe ([`super::StopCheck`]).
    pub const STOP_CHECK: u8 = 3;
    /// The client decided the query is over.
    pub const END_QUERY: u8 = 4;
    /// Ship an ingest batch ([`super::WireIngest`]).
    pub const INGEST: u8 = 5;
    /// Shut the shard server down.
    pub const SHUTDOWN: u8 = 6;
    /// Announce a snapshot shipment ([`super::Snapshot`]); its chunks
    /// follow immediately.
    pub const SNAPSHOT: u8 = 7;
    /// One chunk of a shipped snapshot ([`super::SnapshotChunk`]).
    pub const SNAPSHOT_CHUNK: u8 = 8;
    /// Compact the replica: rebuild without tombstoned state and swap
    /// the clean instance in (empty body; replied with
    /// [`super::CompactAck`]).
    pub const COMPACT: u8 = 9;
    /// Per-round shard reply ([`super::RoundReply`]).
    pub const ROUND: u8 = 64;
    /// Per-shard stop-check reply: the shard's certified rival upper
    /// bound (f64 body) — the largest upper bound of any local candidate
    /// that could still displace the merged selection, 0 when none.
    pub const VOTE: u8 = 65;
    /// Ingest acknowledgement ([`super::IngestAck`]).
    pub const INGEST_ACK: u8 = 66;
    /// Snapshot bootstrap acknowledgement ([`super::SnapshotAck`]).
    pub const SNAPSHOT_ACK: u8 = 67;
    /// Compaction acknowledgement ([`super::CompactAck`]).
    pub const COMPACT_ACK: u8 = 68;
}

fn begin(out: &mut Vec<u8>, t: u8) {
    out.push(WIRE_VERSION);
    out.push(t);
}

/// Check the version byte and return the message tag without consuming
/// the body.
pub fn peek_tag(frame: &[u8]) -> Result<u8, WireError> {
    let mut r = Reader::new(frame);
    let v = r.u8()?;
    if v != WIRE_VERSION {
        return Err(WireError::Version(v));
    }
    r.u8()
}

fn expect<'a>(frame: &'a [u8], want: u8) -> Result<Reader<'a>, WireError> {
    let mut r = Reader::new(frame);
    let v = r.u8()?;
    if v != WIRE_VERSION {
        return Err(WireError::Version(v));
    }
    let t = r.u8()?;
    if t != want {
        return Err(WireError::Tag(t));
    }
    Ok(r)
}

/// Start a query on a shard: round 0 runs immediately and the shard
/// replies with a [`RoundReply`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Start {
    /// Seeker user id ([`UserId`] raw value).
    pub seeker: u32,
    /// Requested result count.
    pub k: u64,
    /// Deduplicated query keyword ids, in query order.
    pub keywords: Vec<u32>,
}

impl Start {
    /// Reset for reuse.
    pub fn clear(&mut self) {
        self.seeker = 0;
        self.k = 0;
        self.keywords.clear();
    }

    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        begin(out, tag::START);
        put_u32v(out, self.seeker);
        put_u64v(out, self.k);
        put_usize(out, self.keywords.len());
        for &k in &self.keywords {
            put_u32v(out, k);
        }
    }

    pub(crate) fn read_body(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.clear();
        self.seeker = r.u32v()?;
        self.k = r.u64v()?;
        let n = r.seq(1)?;
        self.keywords.reserve(n);
        for _ in 0..n {
            self.keywords.push(r.u32v()?);
        }
        Ok(())
    }

    /// Decode a full frame into `self`.
    pub fn decode_into(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let mut r = expect(frame, tag::START)?;
        self.read_body(&mut r)?;
        r.finish()
    }
}

/// One selected candidate in a shard's current greedy selection.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SelectionEntry {
    /// Index into the shard's candidate pool (stable for the query's
    /// lifetime — used to address candidates in [`StopCheck`]).
    pub index: u32,
    /// Document node id ([`DocNodeId`] raw value).
    pub doc: u32,
    /// Certified lower score bound.
    pub lower: f64,
    /// Certified upper score bound.
    pub upper: f64,
}

/// A shard's answer to `Start`/`NextRound`: what this round admitted, the
/// shard's current selection, and the global-threshold ingredients.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundReply {
    /// Query expansion failed — no shard can answer; every other field is
    /// zero/empty.
    pub no_match: bool,
    /// Propagation iteration this round ran at.
    pub iteration: u32,
    /// Upper bound on every undiscovered document's score (identical on
    /// all shards — expansion is deterministic).
    pub threshold: f64,
    /// Whether the propagation frontier has closed.
    pub frontier_closed: bool,
    /// Cumulative admitted-candidate count (SearchStats mirror).
    pub candidates: u64,
    /// Cumulative rejected-document count.
    pub rejected: u64,
    /// Cumulative discovered-component count.
    pub components: u64,
    /// Cumulative pruned-component count.
    pub pruned: u64,
    /// Documents admitted *this round*, tagged with the global trigger
    /// sequence number that admitted them (the client k-way merges these
    /// by sequence to reconstruct the single-process admission order).
    pub admitted: Vec<(u32, u32)>,
    /// The shard's current selection in greedy order.
    pub selection: Vec<SelectionEntry>,
}

impl RoundReply {
    /// Reset for reuse.
    pub fn clear(&mut self) {
        self.no_match = false;
        self.iteration = 0;
        self.threshold = 0.0;
        self.frontier_closed = false;
        self.candidates = 0;
        self.rejected = 0;
        self.components = 0;
        self.pruned = 0;
        self.admitted.clear();
        self.selection.clear();
    }

    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        begin(out, tag::ROUND);
        put_bool(out, self.no_match);
        put_u32v(out, self.iteration);
        put_f64(out, self.threshold);
        put_bool(out, self.frontier_closed);
        put_u64v(out, self.candidates);
        put_u64v(out, self.rejected);
        put_u64v(out, self.components);
        put_u64v(out, self.pruned);
        put_usize(out, self.admitted.len());
        for &(seq, doc) in &self.admitted {
            put_u32v(out, seq);
            put_u32v(out, doc);
        }
        put_usize(out, self.selection.len());
        for e in &self.selection {
            put_u32v(out, e.index);
            put_u32v(out, e.doc);
            put_f64(out, e.lower);
            put_f64(out, e.upper);
        }
    }

    pub(crate) fn read_body(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.clear();
        self.no_match = r.bool()?;
        self.iteration = r.u32v()?;
        self.threshold = r.f64()?;
        self.frontier_closed = r.bool()?;
        self.candidates = r.u64v()?;
        self.rejected = r.u64v()?;
        self.components = r.u64v()?;
        self.pruned = r.u64v()?;
        let n = r.seq(2)?;
        self.admitted.reserve(n);
        for _ in 0..n {
            let seq = r.u32v()?;
            let doc = r.u32v()?;
            self.admitted.push((seq, doc));
        }
        let n = r.seq(18)?;
        self.selection.reserve(n);
        for _ in 0..n {
            let index = r.u32v()?;
            let doc = r.u32v()?;
            let lower = r.f64()?;
            let upper = r.f64()?;
            self.selection.push(SelectionEntry { index, doc, lower, upper });
        }
        Ok(())
    }

    /// Decode a full frame into `self`.
    pub fn decode_into(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let mut r = expect(frame, tag::ROUND)?;
        self.read_body(&mut r)?;
        r.finish()
    }
}

/// The merged global stop probe, specialized per shard: `selected` holds
/// the candidate-pool indices of *this shard's* entries in the merged
/// global selection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StopCheck {
    /// Whether the merged global selection reached `k` entries.
    pub merged_full: bool,
    /// Minimum lower bound across the merged selection (`+inf` when
    /// empty).
    pub min_lower: f64,
    /// This shard's selected candidate indices.
    pub selected: Vec<u32>,
}

impl StopCheck {
    /// Reset for reuse.
    pub fn clear(&mut self) {
        self.merged_full = false;
        self.min_lower = 0.0;
        self.selected.clear();
    }

    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        begin(out, tag::STOP_CHECK);
        put_bool(out, self.merged_full);
        put_f64(out, self.min_lower);
        put_usize(out, self.selected.len());
        for &i in &self.selected {
            put_u32v(out, i);
        }
    }

    pub(crate) fn read_body(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.clear();
        self.merged_full = r.bool()?;
        self.min_lower = r.f64()?;
        let n = r.seq(1)?;
        self.selected.reserve(n);
        for _ in 0..n {
            self.selected.push(r.u32v()?);
        }
        Ok(())
    }

    /// Decode a full frame into `self`.
    pub fn decode_into(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let mut r = expect(frame, tag::STOP_CHECK)?;
        self.read_body(&mut r)?;
        r.finish()
    }
}

/// Acknowledgement of an applied [`WireIngest`]: consistency fingerprints
/// the client cross-checks against its own apply (shards must never
/// drift).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestAck {
    /// Whether the shard classified the delta as detached.
    pub detached: bool,
    /// The shard's epoch after the bump.
    pub epoch: u64,
    /// Total graph nodes after the apply.
    pub nodes: u64,
    /// Components the apply touched.
    pub touched: u64,
}

impl IngestAck {
    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        begin(out, tag::INGEST_ACK);
        put_bool(out, self.detached);
        put_u64v(out, self.epoch);
        put_u64v(out, self.nodes);
        put_u64v(out, self.touched);
    }

    pub(crate) fn read_body(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.detached = r.bool()?;
        self.epoch = r.u64v()?;
        self.nodes = r.u64v()?;
        self.touched = r.u64v()?;
        Ok(())
    }

    /// Decode a full frame into `self`.
    pub fn decode_into(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let mut r = expect(frame, tag::INGEST_ACK)?;
        self.read_body(&mut r)?;
        r.finish()
    }
}

/// Announce a snapshot shipment to a shard server that is waiting to
/// bootstrap: which shard of how many it is to become, and how the
/// snapshot bytes are framed. Exactly `num_chunks` [`SnapshotChunk`]
/// frames follow, in index order; the server replies with a
/// [`SnapshotAck`] once the decoded instance is serving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Fleet size the receiving server partitions for.
    pub num_shards: u32,
    /// The shard index this server takes.
    pub shard: u32,
    /// Total snapshot byte length (the chunks concatenate to this).
    pub total_len: u64,
    /// Number of chunk frames that follow.
    pub num_chunks: u32,
}

impl Snapshot {
    /// Reset for reuse.
    pub fn clear(&mut self) {
        *self = Snapshot::default();
    }

    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        begin(out, tag::SNAPSHOT);
        put_u32v(out, self.num_shards);
        put_u32v(out, self.shard);
        put_u64v(out, self.total_len);
        put_u32v(out, self.num_chunks);
    }

    pub(crate) fn read_body(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.num_shards = r.u32v()?;
        self.shard = r.u32v()?;
        self.total_len = r.u64v()?;
        self.num_chunks = r.u32v()?;
        if self.num_shards == 0 {
            return Err(WireError::Value("snapshot for a zero-shard fleet"));
        }
        if self.shard >= self.num_shards {
            return Err(WireError::Value("snapshot shard index out of range"));
        }
        Ok(())
    }

    /// Decode a full frame into `self`.
    pub fn decode_into(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let mut r = expect(frame, tag::SNAPSHOT)?;
        self.read_body(&mut r)?;
        r.finish()
    }
}

/// Encode one snapshot chunk frame without materializing a
/// [`SnapshotChunk`] (the send path slices the snapshot in place).
pub fn encode_snapshot_chunk(out: &mut Vec<u8>, index: u32, bytes: &[u8]) {
    begin(out, tag::SNAPSHOT_CHUNK);
    put_u32v(out, index);
    put_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// One chunk of a shipped snapshot (see [`Snapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotChunk {
    /// Chunk index (0-based, ascending).
    pub index: u32,
    /// The chunk's slice of the snapshot bytes.
    pub bytes: Vec<u8>,
}

impl SnapshotChunk {
    /// Reset for reuse.
    pub fn clear(&mut self) {
        self.index = 0;
        self.bytes.clear();
    }

    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        encode_snapshot_chunk(out, self.index, &self.bytes);
    }

    pub(crate) fn read_body(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.clear();
        self.index = r.u32v()?;
        self.bytes.extend_from_slice(r.bytes()?);
        Ok(())
    }

    /// Decode a full frame into `self`.
    pub fn decode_into(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let mut r = expect(frame, tag::SNAPSHOT_CHUNK)?;
        self.read_body(&mut r)?;
        r.finish()
    }
}

/// Acknowledgement of a completed snapshot bootstrap: the decoded
/// instance's consistency fingerprint, which the fleet client
/// cross-checks against its own decode of the same bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotAck {
    /// Graph nodes in the decoded instance.
    pub nodes: u64,
    /// Users in the decoded instance.
    pub users: u64,
    /// Documents in the decoded instance.
    pub docs: u64,
    /// `con(d,k)` connections in the decoded instance.
    pub connections: u64,
}

impl SnapshotAck {
    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        begin(out, tag::SNAPSHOT_ACK);
        put_u64v(out, self.nodes);
        put_u64v(out, self.users);
        put_u64v(out, self.docs);
        put_u64v(out, self.connections);
    }

    pub(crate) fn read_body(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.nodes = r.u64v()?;
        self.users = r.u64v()?;
        self.docs = r.u64v()?;
        self.connections = r.u64v()?;
        Ok(())
    }

    /// Decode a full frame into `self`.
    pub fn decode_into(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let mut r = expect(frame, tag::SNAPSHOT_ACK)?;
        self.read_body(&mut r)?;
        r.finish()
    }
}

/// Acknowledgement of a completed compaction: the rebuilt instance's
/// consistency fingerprint, which the fleet client cross-checks against
/// its own compaction of the same replica state (deterministic replay
/// must produce identical clean instances on every shard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactAck {
    /// The shard's epoch after the compaction bump.
    pub epoch: u64,
    /// Graph nodes in the compacted instance.
    pub nodes: u64,
    /// Users in the compacted instance.
    pub users: u64,
    /// Documents in the compacted instance.
    pub docs: u64,
    /// `con(d,k)` connections in the compacted instance.
    pub connections: u64,
}

impl CompactAck {
    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        begin(out, tag::COMPACT_ACK);
        put_u64v(out, self.epoch);
        put_u64v(out, self.nodes);
        put_u64v(out, self.users);
        put_u64v(out, self.docs);
        put_u64v(out, self.connections);
    }

    pub(crate) fn read_body(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.epoch = r.u64v()?;
        self.nodes = r.u64v()?;
        self.users = r.u64v()?;
        self.docs = r.u64v()?;
        self.connections = r.u64v()?;
        Ok(())
    }

    /// Decode a full frame into `self`.
    pub fn decode_into(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let mut r = expect(frame, tag::COMPACT_ACK)?;
        self.read_body(&mut r)?;
        r.finish()
    }
}

fn put_user_ref(out: &mut Vec<u8>, r: UserRef) {
    match r {
        UserRef::Existing(UserId(u)) => {
            out.push(0);
            put_u32v(out, u);
        }
        UserRef::New(i) => {
            out.push(1);
            put_usize(out, i);
        }
    }
}

fn read_user_ref(r: &mut Reader<'_>) -> Result<UserRef, WireError> {
    match r.u8()? {
        0 => Ok(UserRef::Existing(UserId(r.u32v()?))),
        1 => Ok(UserRef::New(r.usize_v()?)),
        _ => Err(WireError::Value("user ref discriminant")),
    }
}

fn put_doc_ref(out: &mut Vec<u8>, r: DocRef) {
    match r {
        DocRef::Existing(TreeId(t)) => {
            out.push(0);
            put_u32v(out, t);
        }
        DocRef::New(i) => {
            out.push(1);
            put_usize(out, i);
        }
    }
}

fn read_doc_ref(r: &mut Reader<'_>) -> Result<DocRef, WireError> {
    match r.u8()? {
        0 => Ok(DocRef::Existing(TreeId(r.u32v()?))),
        1 => Ok(DocRef::New(r.usize_v()?)),
        _ => Err(WireError::Value("doc ref discriminant")),
    }
}

fn put_frag_ref(out: &mut Vec<u8>, r: FragRef) {
    match r {
        FragRef::Existing(DocNodeId(n)) => {
            out.push(0);
            put_u32v(out, n);
        }
        FragRef::New { doc, node } => {
            out.push(1);
            put_usize(out, doc);
            put_u32v(out, node.0);
        }
    }
}

fn read_frag_ref(r: &mut Reader<'_>) -> Result<FragRef, WireError> {
    match r.u8()? {
        0 => Ok(FragRef::Existing(DocNodeId(r.u32v()?))),
        1 => {
            let doc = r.usize_v()?;
            let node = LocalNodeId(r.u32v()?);
            Ok(FragRef::New { doc, node })
        }
        _ => Err(WireError::Value("frag ref discriminant")),
    }
}

fn put_tag_subject(out: &mut Vec<u8>, s: TagSubjectRef) {
    match s {
        TagSubjectRef::Frag(f) => {
            out.push(0);
            put_frag_ref(out, f);
        }
        TagSubjectRef::Tag(TagRef::Existing(TagId(t))) => {
            out.push(1);
            put_u32v(out, t);
        }
        TagSubjectRef::Tag(TagRef::New(i)) => {
            out.push(2);
            put_usize(out, i);
        }
    }
}

fn read_tag_subject(r: &mut Reader<'_>) -> Result<TagSubjectRef, WireError> {
    match r.u8()? {
        0 => Ok(TagSubjectRef::Frag(read_frag_ref(r)?)),
        1 => Ok(TagSubjectRef::Tag(TagRef::Existing(TagId(r.u32v()?)))),
        2 => Ok(TagSubjectRef::Tag(TagRef::New(r.usize_v()?))),
        _ => Err(WireError::Value("tag subject discriminant")),
    }
}

/// One document in a [`WireIngest`]: the builder tree flattened to
/// `(parent, name)` pairs in node-id order (node ids are assigned
/// sequentially in creation order, so replaying the pairs through
/// [`IngestDoc::child`] reproduces every child list exactly), plus the
/// pending per-node texts and the optional poster.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireDoc {
    /// `(parent, name)` per node; the root's parent slot is 0 and unused.
    pub nodes: Vec<(u32, String)>,
    /// `(node, text)` pending text assignments.
    pub texts: Vec<(u32, String)>,
    /// Posting user, if any.
    pub poster: Option<UserRef>,
}

fn put_wire_doc(out: &mut Vec<u8>, d: &WireDoc) {
    put_usize(out, d.nodes.len());
    for (parent, name) in &d.nodes {
        put_u32v(out, *parent);
        put_str(out, name);
    }
    put_usize(out, d.texts.len());
    for (node, text) in &d.texts {
        put_u32v(out, *node);
        put_str(out, text);
    }
    match d.poster {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_user_ref(out, p);
        }
    }
}

fn read_wire_doc(r: &mut Reader<'_>) -> Result<WireDoc, WireError> {
    let mut d = WireDoc::default();
    let n = r.seq(2)?;
    if n == 0 {
        return Err(WireError::Value("document without a root node"));
    }
    d.nodes.reserve(n);
    for i in 0..n {
        let parent = r.u32v()?;
        let ok = if i == 0 { parent == 0 } else { (parent as usize) < i };
        if !ok {
            return Err(WireError::Value("document node parent out of range"));
        }
        d.nodes.push((parent, r.str()?.to_owned()));
    }
    let t = r.seq(2)?;
    d.texts.reserve(t);
    for _ in 0..t {
        let node = r.u32v()?;
        if node as usize >= n {
            return Err(WireError::Value("text node out of range"));
        }
        d.texts.push((node, r.str()?.to_owned()));
    }
    d.poster = match r.u8()? {
        0 => None,
        1 => Some(read_user_ref(r)?),
        _ => Err(WireError::Value("poster option discriminant"))?,
    };
    Ok(d)
}

/// An [`IngestBatch`] in wire form. Conversion is loss-free in both
/// directions; the decode validates every structural index so
/// [`WireIngest::to_batch`] can always replay through the public batch
/// builder API without panicking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireIngest {
    /// Users the batch creates.
    pub new_users: u64,
    /// Weighted social edges.
    pub social_edges: Vec<(UserRef, UserRef, f64)>,
    /// New documents.
    pub documents: Vec<WireDoc>,
    /// Comment edges.
    pub comments: Vec<(DocRef, FragRef)>,
    /// Tags: subject, author, optional keyword (`None` = endorsement).
    pub tags: Vec<(TagSubjectRef, UserRef, Option<String>)>,
    /// Users the batch tombstones (raw [`UserId`] values).
    pub delete_users: Vec<u32>,
    /// Documents the batch tombstones (raw [`TreeId`] values).
    pub delete_documents: Vec<u32>,
    /// Tags the batch tombstones (raw [`TagId`] values).
    pub delete_tags: Vec<u32>,
    /// Social edges the batch removes (raw `(from, to)` [`UserId`] pairs).
    pub remove_social_edges: Vec<(u32, u32)>,
    /// Comment edges the batch removes (raw `(comment TreeId, target
    /// DocNodeId)` pairs).
    pub remove_comments: Vec<(u32, u32)>,
}

impl WireIngest {
    /// Reset for reuse.
    pub fn clear(&mut self) {
        self.new_users = 0;
        self.social_edges.clear();
        self.documents.clear();
        self.comments.clear();
        self.tags.clear();
        self.delete_users.clear();
        self.delete_documents.clear();
        self.delete_tags.clear();
        self.remove_social_edges.clear();
        self.remove_comments.clear();
    }

    /// Capture a batch for shipping.
    pub fn from_batch(batch: &IngestBatch) -> Self {
        let mut w = WireIngest { new_users: batch.num_users() as u64, ..WireIngest::default() };
        w.social_edges.extend_from_slice(batch.social_edges());
        for (doc, poster) in batch.documents() {
            let builder = doc.builder();
            let mut nodes: Vec<(u32, String)> = (0..builder.len())
                .map(|i| (0u32, builder.name(LocalNodeId(i as u32)).to_owned()))
                .collect();
            for i in 0..builder.len() {
                for &child in builder.children(LocalNodeId(i as u32)) {
                    nodes[child.0 as usize].0 = i as u32;
                }
            }
            let texts = doc.texts().iter().map(|(n, t)| (n.0, t.clone())).collect();
            w.documents.push(WireDoc { nodes, texts, poster: *poster });
        }
        w.comments.extend_from_slice(batch.comments());
        w.tags.extend(batch.tags().iter().cloned());
        w.delete_users.extend(batch.deleted_users().iter().map(|u| u.0));
        w.delete_documents.extend(batch.deleted_documents().iter().map(|t| t.0));
        w.delete_tags.extend(batch.deleted_tags().iter().map(|t| t.0));
        w.remove_social_edges.extend(batch.removed_social_edges().iter().map(|&(a, b)| (a.0, b.0)));
        w.remove_comments.extend(batch.removed_comments().iter().map(|&(c, t)| (c.0, t.0)));
        w
    }

    /// Rebuild the batch on the receiving side.
    pub fn to_batch(&self) -> IngestBatch {
        let mut batch = IngestBatch::new();
        for _ in 0..self.new_users {
            batch.add_user();
        }
        for &(from, to, weight) in &self.social_edges {
            batch.add_social_edge(from, to, weight);
        }
        for d in &self.documents {
            let mut doc = IngestDoc::new(d.nodes[0].1.as_str());
            for (parent, name) in &d.nodes[1..] {
                doc.child(LocalNodeId(*parent), name.as_str());
            }
            for (node, text) in &d.texts {
                doc.set_text(LocalNodeId(*node), text.as_str());
            }
            batch.add_document(doc, d.poster);
        }
        for &(comment, target) in &self.comments {
            batch.add_comment(comment, target);
        }
        for (subject, author, keyword) in &self.tags {
            batch.add_tag(*subject, *author, keyword.as_deref());
        }
        for &u in &self.delete_users {
            batch.delete_user(UserId(u));
        }
        for &t in &self.delete_documents {
            batch.delete_document(TreeId(t));
        }
        for &t in &self.delete_tags {
            batch.delete_tag(TagId(t));
        }
        for &(from, to) in &self.remove_social_edges {
            batch.remove_social_edge(UserId(from), UserId(to));
        }
        for &(comment, target) in &self.remove_comments {
            batch.remove_comment(TreeId(comment), DocNodeId(target));
        }
        batch
    }

    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        begin(out, tag::INGEST);
        put_u64v(out, self.new_users);
        put_usize(out, self.social_edges.len());
        for &(from, to, weight) in &self.social_edges {
            put_user_ref(out, from);
            put_user_ref(out, to);
            put_f64(out, weight);
        }
        put_usize(out, self.documents.len());
        for d in &self.documents {
            put_wire_doc(out, d);
        }
        put_usize(out, self.comments.len());
        for &(comment, target) in &self.comments {
            put_doc_ref(out, comment);
            put_frag_ref(out, target);
        }
        put_usize(out, self.tags.len());
        for (subject, author, keyword) in &self.tags {
            put_tag_subject(out, *subject);
            put_user_ref(out, *author);
            match keyword {
                None => out.push(0),
                Some(k) => {
                    out.push(1);
                    put_str(out, k);
                }
            }
        }
        put_usize(out, self.delete_users.len());
        for &u in &self.delete_users {
            put_u32v(out, u);
        }
        put_usize(out, self.delete_documents.len());
        for &t in &self.delete_documents {
            put_u32v(out, t);
        }
        put_usize(out, self.delete_tags.len());
        for &t in &self.delete_tags {
            put_u32v(out, t);
        }
        put_usize(out, self.remove_social_edges.len());
        for &(from, to) in &self.remove_social_edges {
            put_u32v(out, from);
            put_u32v(out, to);
        }
        put_usize(out, self.remove_comments.len());
        for &(comment, target) in &self.remove_comments {
            put_u32v(out, comment);
            put_u32v(out, target);
        }
    }

    pub(crate) fn read_body(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.clear();
        self.new_users = r.u64v()?;
        let n = r.seq(12)?;
        self.social_edges.reserve(n);
        for _ in 0..n {
            let from = read_user_ref(r)?;
            let to = read_user_ref(r)?;
            let weight = r.f64()?;
            self.social_edges.push((from, to, weight));
        }
        let n = r.seq(4)?;
        self.documents.reserve(n);
        for _ in 0..n {
            self.documents.push(read_wire_doc(r)?);
        }
        let n = r.seq(4)?;
        self.comments.reserve(n);
        for _ in 0..n {
            let comment = read_doc_ref(r)?;
            let target = read_frag_ref(r)?;
            self.comments.push((comment, target));
        }
        let n = r.seq(5)?;
        self.tags.reserve(n);
        for _ in 0..n {
            let subject = read_tag_subject(r)?;
            let author = read_user_ref(r)?;
            let keyword = match r.u8()? {
                0 => None,
                1 => Some(r.str()?.to_owned()),
                _ => Err(WireError::Value("tag keyword option discriminant"))?,
            };
            self.tags.push((subject, author, keyword));
        }
        let n = r.seq(1)?;
        self.delete_users.reserve(n);
        for _ in 0..n {
            self.delete_users.push(r.u32v()?);
        }
        let n = r.seq(1)?;
        self.delete_documents.reserve(n);
        for _ in 0..n {
            self.delete_documents.push(r.u32v()?);
        }
        let n = r.seq(1)?;
        self.delete_tags.reserve(n);
        for _ in 0..n {
            self.delete_tags.push(r.u32v()?);
        }
        let n = r.seq(2)?;
        self.remove_social_edges.reserve(n);
        for _ in 0..n {
            let from = r.u32v()?;
            let to = r.u32v()?;
            self.remove_social_edges.push((from, to));
        }
        let n = r.seq(2)?;
        self.remove_comments.reserve(n);
        for _ in 0..n {
            let comment = r.u32v()?;
            let target = r.u32v()?;
            self.remove_comments.push((comment, target));
        }
        Ok(())
    }

    /// Decode a full frame into `self`.
    pub fn decode_into(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let mut r = expect(frame, tag::INGEST)?;
        self.read_body(&mut r)?;
        r.finish()
    }
}

/// Owned form of any protocol message — the dispatch/diagnostic
/// convenience (tests, tooling); the hot path uses the per-type
/// `encode`/`decode_into` pairs with reused buffers instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Begin a query.
    Start(Start),
    /// Advance one propagation step and run the next round.
    NextRound,
    /// Global stop probe.
    StopCheck(StopCheck),
    /// Query is over.
    EndQuery,
    /// Ship an ingest batch.
    Ingest(WireIngest),
    /// Shut the server down.
    Shutdown,
    /// Announce a snapshot shipment.
    Snapshot(Snapshot),
    /// One chunk of a shipped snapshot.
    SnapshotChunk(SnapshotChunk),
    /// Compact the replica off the serving path.
    Compact,
    /// Per-round shard reply.
    Round(RoundReply),
    /// Per-shard stop-check reply: the certified rival upper bound.
    Vote(f64),
    /// Ingest acknowledgement.
    IngestAck(IngestAck),
    /// Snapshot bootstrap acknowledgement.
    SnapshotAck(SnapshotAck),
    /// Compaction acknowledgement.
    CompactAck(CompactAck),
}

impl Message {
    /// Append version + tag + body to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::Start(m) => m.encode(out),
            Message::NextRound => begin(out, tag::NEXT_ROUND),
            Message::StopCheck(m) => m.encode(out),
            Message::EndQuery => begin(out, tag::END_QUERY),
            Message::Ingest(m) => m.encode(out),
            Message::Shutdown => begin(out, tag::SHUTDOWN),
            Message::Snapshot(m) => m.encode(out),
            Message::SnapshotChunk(m) => m.encode(out),
            Message::Compact => begin(out, tag::COMPACT),
            Message::Round(m) => m.encode(out),
            Message::Vote(v) => {
                begin(out, tag::VOTE);
                put_f64(out, *v);
            }
            Message::IngestAck(m) => m.encode(out),
            Message::SnapshotAck(m) => m.encode(out),
            Message::CompactAck(m) => m.encode(out),
        }
    }

    /// Decode any message from a frame payload.
    pub fn decode(frame: &[u8]) -> Result<Message, WireError> {
        let t = peek_tag(frame)?;
        let mut r = expect(frame, t)?;
        let msg = match t {
            tag::START => {
                let mut m = Start::default();
                m.read_body(&mut r)?;
                Message::Start(m)
            }
            tag::NEXT_ROUND => Message::NextRound,
            tag::STOP_CHECK => {
                let mut m = StopCheck::default();
                m.read_body(&mut r)?;
                Message::StopCheck(m)
            }
            tag::END_QUERY => Message::EndQuery,
            tag::INGEST => {
                let mut m = WireIngest::default();
                m.read_body(&mut r)?;
                Message::Ingest(m)
            }
            tag::SHUTDOWN => Message::Shutdown,
            tag::SNAPSHOT => {
                let mut m = Snapshot::default();
                m.read_body(&mut r)?;
                Message::Snapshot(m)
            }
            tag::SNAPSHOT_CHUNK => {
                let mut m = SnapshotChunk::default();
                m.read_body(&mut r)?;
                Message::SnapshotChunk(m)
            }
            tag::COMPACT => Message::Compact,
            tag::ROUND => {
                let mut m = RoundReply::default();
                m.read_body(&mut r)?;
                Message::Round(m)
            }
            tag::VOTE => Message::Vote(r.f64()?),
            tag::INGEST_ACK => {
                let mut m = IngestAck::default();
                m.read_body(&mut r)?;
                Message::IngestAck(m)
            }
            tag::SNAPSHOT_ACK => {
                let mut m = SnapshotAck::default();
                m.read_body(&mut r)?;
                Message::SnapshotAck(m)
            }
            tag::COMPACT_ACK => {
                let mut m = CompactAck::default();
                m.read_body(&mut r)?;
                Message::CompactAck(m)
            }
            other => return Err(WireError::Tag(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Reusable decode buffers for a shard server's request loop: one slot
/// per request kind, so steady-state serving allocates nothing for
/// `Start`/`StopCheck` bodies (ingest strings still allocate — they are
/// rare and retained).
#[derive(Debug, Default)]
pub struct RequestBuf {
    /// Last decoded `Start`.
    pub start: Start,
    /// Last decoded `StopCheck`.
    pub stop: StopCheck,
    /// Last decoded `WireIngest`.
    pub ingest: WireIngest,
}

/// Which request a frame carried (bodies land in [`RequestBuf`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// [`Start`] (body in `RequestBuf::start`).
    Start,
    /// Advance to the next round.
    NextRound,
    /// [`StopCheck`] (body in `RequestBuf::stop`).
    StopCheck,
    /// Query is over.
    EndQuery,
    /// [`WireIngest`] (body in `RequestBuf::ingest`).
    Ingest,
    /// Shut down.
    Shutdown,
    /// Compact the replica (empty body).
    Compact,
}

impl RequestBuf {
    /// Decode one request frame into the matching slot.
    pub fn read(&mut self, frame: &[u8]) -> Result<RequestKind, WireError> {
        let t = peek_tag(frame)?;
        let mut r = expect(frame, t)?;
        let kind = match t {
            tag::START => {
                self.start.read_body(&mut r)?;
                RequestKind::Start
            }
            tag::NEXT_ROUND => RequestKind::NextRound,
            tag::STOP_CHECK => {
                self.stop.read_body(&mut r)?;
                RequestKind::StopCheck
            }
            tag::END_QUERY => RequestKind::EndQuery,
            tag::INGEST => {
                self.ingest.read_body(&mut r)?;
                RequestKind::Ingest
            }
            tag::SHUTDOWN => RequestKind::Shutdown,
            tag::COMPACT => RequestKind::Compact,
            other => return Err(WireError::Tag(other)),
        };
        r.finish()?;
        Ok(kind)
    }
}
