//! Shard transports: the [`ShardTransport`] trait the fleet client
//! drives, a buffered [`FramedTransport`] over any byte stream, and the
//! in-memory [`LoopbackConn`] duplex for offline tests.

use crate::frame::{read_frame, MAX_FRAME};
use crate::msg::{
    encode_snapshot_chunk, tag, CompactAck, IngestAck, RoundReply, Snapshot, SnapshotAck, Start,
    StopCheck, WireIngest, SNAPSHOT_CHUNK_BYTES, WIRE_VERSION,
};
use crate::WireError;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Frame/byte counters for one transport direction pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames queued for sending.
    pub frames_sent: u64,
    /// Bytes flushed to the stream (length prefixes included).
    pub bytes_sent: u64,
    /// Frames received.
    pub frames_received: u64,
    /// Bytes received (length prefixes included).
    pub bytes_received: u64,
}

/// The client side of one shard connection.
///
/// Sends are *queued*: nothing hits the stream until [`flush`], so the
/// fleet client can write every shard's request before reading any reply
/// — the pipelining that makes round latency max-of-shards instead of
/// sum. The `recv_*` methods flush implicitly, so a forgotten flush
/// degrades to unpipelined, never to deadlock.
///
/// [`flush`]: ShardTransport::flush
pub trait ShardTransport: Send {
    /// Queue a [`Start`] request.
    fn send_start(&mut self, msg: &Start) -> Result<(), WireError>;
    /// Queue a next-round request.
    fn send_next_round(&mut self) -> Result<(), WireError>;
    /// Queue a [`StopCheck`] probe.
    fn send_stop_check(&mut self, msg: &StopCheck) -> Result<(), WireError>;
    /// Queue an end-of-query notice.
    fn send_end_query(&mut self) -> Result<(), WireError>;
    /// Queue an ingest shipment.
    fn send_ingest(&mut self, msg: &WireIngest) -> Result<(), WireError>;
    /// Queue a snapshot shipment for a bootstrapping shard server: one
    /// [`Snapshot`] header naming the shard's place in the fleet, then
    /// the snapshot bytes chunked under
    /// [`crate::msg::SNAPSHOT_CHUNK_BYTES`] per frame.
    fn send_snapshot(
        &mut self,
        num_shards: u32,
        shard: u32,
        snapshot: &[u8],
    ) -> Result<(), WireError>;
    /// Queue a compaction request: the shard rebuilds its replica
    /// without tombstoned state and swaps the clean instance in.
    fn send_compact(&mut self) -> Result<(), WireError>;
    /// Queue a shutdown request.
    fn send_shutdown(&mut self) -> Result<(), WireError>;
    /// Push every queued request to the peer.
    fn flush(&mut self) -> Result<(), WireError>;
    /// Receive a [`RoundReply`] into a reused buffer.
    fn recv_round(&mut self, out: &mut RoundReply) -> Result<(), WireError>;
    /// Receive a stop-check reply: the shard's certified rival upper
    /// bound (0 when nothing local can displace the merged selection).
    fn recv_vote(&mut self) -> Result<f64, WireError>;
    /// Receive an [`IngestAck`].
    fn recv_ingest_ack(&mut self, out: &mut IngestAck) -> Result<(), WireError>;
    /// Receive a [`SnapshotAck`].
    fn recv_snapshot_ack(&mut self, out: &mut SnapshotAck) -> Result<(), WireError>;
    /// Receive a [`CompactAck`].
    fn recv_compact_ack(&mut self, out: &mut CompactAck) -> Result<(), WireError>;
    /// Traffic counters so far.
    fn stats(&self) -> TransportStats;
}

/// [`ShardTransport`] over any `Read + Write` byte stream (unix socket,
/// [`LoopbackConn`], ...). Owns reusable encode/decode buffers; the
/// steady-state round exchange allocates nothing.
#[derive(Debug)]
pub struct FramedTransport<S> {
    stream: S,
    out: Vec<u8>,
    payload: Vec<u8>,
    inbuf: Vec<u8>,
    stats: TransportStats,
}

impl<S: Read + Write + Send> FramedTransport<S> {
    /// Wrap a connected stream.
    pub fn new(stream: S) -> Self {
        FramedTransport {
            stream,
            out: Vec::new(),
            payload: Vec::new(),
            inbuf: Vec::new(),
            stats: TransportStats::default(),
        }
    }

    fn queue(&mut self, encode: impl FnOnce(&mut Vec<u8>)) -> Result<(), WireError> {
        self.payload.clear();
        encode(&mut self.payload);
        if self.payload.len() > MAX_FRAME as usize {
            return Err(WireError::FrameTooLarge(self.payload.len() as u32));
        }
        self.out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        self.out.extend_from_slice(&self.payload);
        self.stats.frames_sent += 1;
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<(), WireError> {
        if !self.out.is_empty() {
            ShardTransport::flush(self)?;
        }
        read_frame(&mut self.stream, &mut self.inbuf)?;
        self.stats.frames_received += 1;
        self.stats.bytes_received += 4 + self.inbuf.len() as u64;
        Ok(())
    }
}

impl<S: Read + Write + Send> ShardTransport for FramedTransport<S> {
    fn send_start(&mut self, msg: &Start) -> Result<(), WireError> {
        self.queue(|out| msg.encode(out))
    }

    fn send_next_round(&mut self) -> Result<(), WireError> {
        self.queue(|out| out.extend_from_slice(&[WIRE_VERSION, tag::NEXT_ROUND]))
    }

    fn send_stop_check(&mut self, msg: &StopCheck) -> Result<(), WireError> {
        self.queue(|out| msg.encode(out))
    }

    fn send_end_query(&mut self) -> Result<(), WireError> {
        self.queue(|out| out.extend_from_slice(&[WIRE_VERSION, tag::END_QUERY]))
    }

    fn send_ingest(&mut self, msg: &WireIngest) -> Result<(), WireError> {
        self.queue(|out| msg.encode(out))
    }

    fn send_snapshot(
        &mut self,
        num_shards: u32,
        shard: u32,
        snapshot: &[u8],
    ) -> Result<(), WireError> {
        let header = Snapshot {
            num_shards,
            shard,
            total_len: snapshot.len() as u64,
            num_chunks: snapshot.len().div_ceil(SNAPSHOT_CHUNK_BYTES) as u32,
        };
        self.queue(|out| header.encode(out))?;
        for (i, chunk) in snapshot.chunks(SNAPSHOT_CHUNK_BYTES).enumerate() {
            self.queue(|out| encode_snapshot_chunk(out, i as u32, chunk))?;
        }
        Ok(())
    }

    fn send_compact(&mut self) -> Result<(), WireError> {
        self.queue(|out| out.extend_from_slice(&[WIRE_VERSION, tag::COMPACT]))
    }

    fn send_shutdown(&mut self) -> Result<(), WireError> {
        self.queue(|out| out.extend_from_slice(&[WIRE_VERSION, tag::SHUTDOWN]))
    }

    fn flush(&mut self) -> Result<(), WireError> {
        if self.out.is_empty() {
            return Ok(());
        }
        self.stream.write_all(&self.out)?;
        self.stats.bytes_sent += self.out.len() as u64;
        self.out.clear();
        self.stream.flush()?;
        Ok(())
    }

    fn recv_round(&mut self, out: &mut RoundReply) -> Result<(), WireError> {
        self.recv_frame()?;
        out.decode_into(&self.inbuf)
    }

    fn recv_vote(&mut self) -> Result<f64, WireError> {
        self.recv_frame()?;
        let mut r = crate::codec::Reader::new(&self.inbuf);
        let v = r.u8()?;
        if v != WIRE_VERSION {
            return Err(WireError::Version(v));
        }
        let t = r.u8()?;
        if t != tag::VOTE {
            return Err(WireError::Tag(t));
        }
        let rival = r.f64()?;
        r.finish()?;
        Ok(rival)
    }

    fn recv_ingest_ack(&mut self, out: &mut IngestAck) -> Result<(), WireError> {
        self.recv_frame()?;
        out.decode_into(&self.inbuf)
    }

    fn recv_snapshot_ack(&mut self, out: &mut SnapshotAck) -> Result<(), WireError> {
        self.recv_frame()?;
        out.decode_into(&self.inbuf)
    }

    fn recv_compact_ack(&mut self, out: &mut CompactAck) -> Result<(), WireError> {
        self.recv_frame()?;
        out.decode_into(&self.inbuf)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// How many empty polls a loopback read spins (`spin_loop` hint) before
/// escalating to the mixed phase. Round replies usually land within a
/// few hundred nanoseconds of the request on a loaded fleet, so a short
/// spin keeps the common handoff off the scheduler entirely.
const SPIN: usize = 512;

/// How many further polls follow the pure-spin phase before parking on
/// the condvar. The gaps a loopback end actually waits through during a
/// query are the *peer's* per-round work — the client's merge between
/// rounds, the server's propagation step — which is tens of
/// microseconds; a condvar park/wake across that gap costs more than
/// the gap itself and showed up as a multi-× round-latency penalty over
/// the in-process transport in `benches/shards.rs`. During this phase
/// the poll mostly `spin_loop`s but yields every [`YIELD_EVERY`] polls:
/// pure spinning would hog a scheduler quantum when fleet threads
/// outnumber cores (measured: millisecond rounds at 4 shards on 2
/// cores), while yielding every poll pays a syscall per iteration when
/// the core is otherwise free. A genuinely idle connection (between
/// queries, after shutdown) falls through to the condvar after a few
/// milliseconds instead of burning a CPU.
const YIELD: usize = 50_000;

/// Yield cadence inside the mixed phase (see [`YIELD`]).
const YIELD_EVERY: usize = 64;

#[derive(Debug, Default)]
struct PipeState {
    buf: std::collections::VecDeque<u8>,
    closed: bool,
    /// Is a reader parked on `ready`? Writers skip the (syscall-priced)
    /// notify when nobody waits — the common case while the peer spins.
    waiting: bool,
}

/// The reader-polled mirrors, padded onto their own cache line: a
/// spinning reader must not share a line with the mutex or the buffer
/// bookkeeping, or every byte the writer pushes invalidates the polled
/// line and the coherence ping-pong taxes the writer per store (measured
/// ~15µs per ~100-byte round before the padding).
#[repr(align(64))]
#[derive(Debug, Default)]
struct PollFlags {
    /// `buf.len()` mirrored outside the lock; written once per `write`.
    size: std::sync::atomic::AtomicUsize,
    /// `closed` mirrored outside the lock.
    hung_up: std::sync::atomic::AtomicBool,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    ready: Condvar,
    poll: PollFlags,
}

/// One end of an in-memory duplex byte stream — the offline stand-in for
/// a socket. Blocking `Read`/`Write`; dropping an end closes the peer's
/// read side (EOF), mirroring socket hangup.
#[derive(Debug)]
pub struct LoopbackConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

/// Create a connected pair of loopback ends.
pub fn loopback_pair() -> (LoopbackConn, LoopbackConn) {
    let a = Arc::new(Pipe::default());
    let b = Arc::new(Pipe::default());
    (LoopbackConn { rx: Arc::clone(&a), tx: Arc::clone(&b) }, LoopbackConn { rx: b, tx: a })
}

impl Read for LoopbackConn {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        use std::sync::atomic::Ordering;
        if out.is_empty() {
            return Ok(0);
        }
        for i in 0..SPIN + YIELD {
            if self.rx.poll.size.load(Ordering::Acquire) != 0
                || self.rx.poll.hung_up.load(Ordering::Acquire)
            {
                let state = self.rx.state.lock().unwrap();
                if !state.buf.is_empty() || state.closed {
                    return Ok(drain(&self.rx, state, out));
                }
            }
            if i < SPIN || (i - SPIN) % YIELD_EVERY != YIELD_EVERY - 1 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let mut state = self.rx.state.lock().unwrap();
        while state.buf.is_empty() && !state.closed {
            state.waiting = true;
            state = self.rx.ready.wait(state).unwrap();
        }
        state.waiting = false;
        Ok(drain(&self.rx, state, out))
    }
}

fn drain(pipe: &Pipe, mut state: std::sync::MutexGuard<'_, PipeState>, out: &mut [u8]) -> usize {
    let n = state.buf.len().min(out.len());
    for slot in out.iter_mut().take(n) {
        *slot = state.buf.pop_front().expect("sized above");
    }
    pipe.poll.size.store(state.buf.len(), std::sync::atomic::Ordering::Release);
    n
}

impl Write for LoopbackConn {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        use std::sync::atomic::Ordering;
        let mut state = self.tx.state.lock().unwrap();
        if state.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "loopback peer closed",
            ));
        }
        state.buf.extend(bytes);
        self.tx.poll.size.store(state.buf.len(), Ordering::Release);
        let waiting = state.waiting;
        drop(state);
        if waiting {
            self.tx.ready.notify_one();
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for LoopbackConn {
    fn drop(&mut self) {
        for pipe in [&self.rx, &self.tx] {
            let mut state = pipe.state.lock().unwrap();
            state.closed = true;
            pipe.poll.hung_up.store(true, std::sync::atomic::Ordering::Release);
            drop(state);
            pipe.ready.notify_all();
        }
    }
}
