//! Facade crate for the S3 reproduction (Bonaque, Cautis, Goasdoué,
//! Manolescu — *Social, Structured and Semantic Search*, EDBT 2016).
//!
//! This crate re-exports the public surface of every workspace crate so
//! applications can depend on a single `s3` crate:
//!
//! * [`text`] — tokenization, stemming, keyword interning;
//! * [`rdf`] — weighted RDF store, RDFS saturation, keyword extension;
//! * [`doc`] — structured documents, fragments, Dewey positions;
//! * [`graph`] — the social/content entity graph and proximity propagation;
//! * [`core`] — the S3 instance, `con(d,k)` connections, scores and the
//!   S3k top-k search algorithm;
//! * [`engine`] — the serving layer: batched concurrent queries over a
//!   shared instance, per-worker scratch reuse, an LRU result cache,
//!   [`engine::ShardedEngine`] scatter-gathering over component shards,
//!   and [`engine::FleetEngine`] driving shard *servers* over wire
//!   transports;
//! * [`wire`] — the cross-process protocol: versioned binary frames for
//!   the per-round exchange and the [`wire::ShardTransport`] trait with
//!   loopback and unix-socket implementations;
//! * [`topks`] — the TopkS baseline the paper compares against;
//! * [`datasets`] — synthetic Twitter/Vodkaster/Yelp generators and query
//!   workloads.
//!
//! See `examples/quickstart.rs` for an end-to-end tour,
//! `examples/serve_workload.rs` for the serving layer,
//! `examples/shard_scaleout.rs` for sharded scale-out,
//! `examples/live_ingest.rs` for live ingestion,
//! `examples/compaction.rs` for deletions, updates and compaction,
//! `examples/shard_fleet.rs` for the cross-process fleet and
//! `examples/warm_restart.rs` for durable restarts.

#![warn(missing_docs)]
pub use s3_core as core;
pub use s3_datasets as datasets;
pub use s3_doc as doc;
pub use s3_engine as engine;
pub use s3_graph as graph;
pub use s3_rdf as rdf;
pub use s3_text as text;
pub use s3_topks as topks;
pub use s3_wire as wire;

/// Crate version of the facade.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
