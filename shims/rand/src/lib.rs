//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface this workspace uses — `Rng::gen_range`
//! over half-open and inclusive ranges of the common integer types and
//! floats, `Rng::gen_bool`, and `rngs::StdRng` seeded through
//! `SeedableRng::seed_from_u64` — on top of a xoshiro256++ core seeded via
//! SplitMix64 (the same seeding scheme the real `rand_core` uses, so
//! streams are high-quality, though not bit-identical to upstream
//! `StdRng`). Everything is deterministic given a seed.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform draw of a full-range value (only `f64` in `[0,1)` and the
    /// unsigned integers are supported).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A `u64` mapped to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Uniform draw from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                // 53-bit grid over [0,1]: the endpoint is reachable.
                let u = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&f));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
