//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros and declares the two marker traits so
//! `use serde::{Deserialize, Serialize}` resolves in both the type and the
//! macro namespace. No actual serialization machinery is provided (nothing
//! in the workspace serializes at runtime); swap this shim for the real
//! crate by deleting `shims/` and pointing the workspace at crates.io.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
