//! Offline stand-in for `criterion`.
//!
//! Implements the bencher surface the workspace uses — `bench_function`,
//! `benchmark_group`, `Bencher::iter` / `iter_batched`, `BatchSize`,
//! `criterion_group!` / `criterion_main!`, `black_box` — with a simple
//! mean-over-samples measurement loop and stdout reporting. No statistics
//! beyond mean/min; good enough to compare configurations offline. Swap in
//! the real crate (same manifest entry) for publication-grade numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Measure one closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(&id.into(), &b.samples);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named group; benchmark ids are prefixed with the group name.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measure one closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Finish the group (reporting happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Collects one timing sample per `iter`/`iter_batched` call.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        black_box(routine());
        self.samples.push(t0.elapsed());
    }

    /// Time `routine` on a fresh `setup()` input, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.samples.push(t0.elapsed());
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        samples.len()
    );
}

/// Declare a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
