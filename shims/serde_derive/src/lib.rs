//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so the
//! structures stay serialization-ready, but nothing in the build actually
//! serializes through serde. The container has no network access to the
//! crates.io registry, so this proc-macro crate accepts the same derive
//! syntax (including `#[serde(...)]` field attributes) and expands to an
//! empty token stream.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and emit nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and emit nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
