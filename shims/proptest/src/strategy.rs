//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically samples a value from a [`TestRng`].
//! Implemented for the numeric range types and for `&str` regex-lite
//! patterns (`.{0,300}`, `[a-zA-Z #@.]{0,120}`, …) — the only strategy
//! shapes this workspace's tests use.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-case random source.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded source for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn gen_range_usize(&mut self, lo: usize, hi_incl: usize) -> usize {
        self.0.gen_range(lo..=hi_incl)
    }
}

/// A source of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// One parsed regex-lite atom: a set of candidate characters plus a
/// repetition range.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the subset of regex syntax the tests use: a sequence of
/// `<class>{m,n}` atoms where `<class>` is `.`, a literal character, or a
/// bracket class of literals and `a-z` ranges. `{m}` and a missing
/// repetition (exactly once) are also accepted.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let choices = match chars[i] {
            '.' => {
                i += 1;
                // "Any char": printable ASCII plus a few multibyte probes.
                let mut all: Vec<char> = (' '..='~').collect();
                all.extend(['é', 'è', 'à', 'ß', '中', '🦀', '\t']);
                all
            }
            '[' => {
                let close =
                    chars[i..].iter().position(|&c| c == ']').expect("unclosed character class")
                        + i;
                let body = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j], body[j + 2]);
                        assert!(lo <= hi, "bad class range {lo}-{hi}");
                        set.extend(lo..=hi);
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                set
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unclosed repetition") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition"),
                    n.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!choices.is_empty(), "empty character class in {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.gen_range_usize(atom.min, atom.max);
            for _ in 0..n {
                let pick = rng.gen_range_usize(0, atom.choices.len() - 1);
                out.push(atom.choices[pick]);
            }
        }
        out
    }
}

/// `Just`-style constant strategy, for completeness.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (1.2f64..3.0).sample(&mut rng);
            assert!((1.2..3.0).contains(&f));
            let g = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "[a-z #@]{0,60}".sample(&mut rng);
            assert!(s.chars().count() <= 60);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || " #@".contains(c)));
            let w = "[a-zéèà]{4,20}".sample(&mut rng);
            let n = w.chars().count();
            assert!((4..=20).contains(&n), "{w}");
        }
    }

    #[test]
    fn dot_pattern_is_total() {
        let mut rng = TestRng::new(3);
        let s = ".{0,300}".sample(&mut rng);
        assert!(s.chars().count() <= 300);
    }
}
