//! Offline stand-in for `proptest`.
//!
//! The container has no network access to crates.io, so this crate
//! reimplements the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) expanding each `fn name(arg in strategy, ...)` item into a
//!   `#[test]` that runs `config.cases` deterministic cases;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`] returning [`test_runner::TestCaseError`];
//! * strategies: half-open and inclusive numeric ranges, and `&str`
//!   regex-lite patterns of the form `<atom>{m,n}` where `<atom>` is `.`
//!   or a character class like `[a-zA-Z #@.]` (the only regex shapes the
//!   test suite uses).
//!
//! Cases are generated from a fixed per-test seed (the test name hashed
//! with the case index), so failures reproduce across runs. There is no
//! shrinking: the failing inputs are printed instead.

pub mod strategy;
pub mod test_runner;

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic seed for one test case.
#[doc(hidden)]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Fail the test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the test case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fail the test case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discard the case (counted separately, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// The property-test macro. Mirrors proptest's syntax for the forms used
/// in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let seed = $crate::case_seed(stringify!($name), case);
                let mut __rng = $crate::strategy::TestRng::new(seed);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.cases * 4 {
                            panic!("too many rejected cases in {}", stringify!($name));
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {case} (inputs: {})\n{msg}",
                            stringify!($name),
                            vec![$(format!("{} = {:?}", stringify!($arg), $arg)),+]
                                .join(", "),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
