//! Test-runner types: configuration and case-level errors.

/// Number of cases and knobs mirroring proptest's config struct. Extra
/// fields exist only for `..ProptestConfig::default()` compatibility.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; local rejects are counted instead.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, max_local_rejects: 1024 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case is invalid for the property (`prop_assume!`); not a failure.
    Reject(String),
    /// The property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (discarded) case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias used by helper functions in the tests.
pub type TestCaseResult = Result<(), TestCaseError>;
