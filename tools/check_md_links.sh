#!/usr/bin/env bash
# Fail if any tracked markdown file contains a relative link to a path
# that does not exist. External links (http/https/mailto) and pure
# in-page anchors are skipped; `#section` suffixes on file links are
# stripped before the existence check. Run from the repository root:
#
#   tools/check_md_links.sh
set -u

status=0
# Markdown inline links: ](target). Reference-style definitions are rare
# enough here that inline coverage is the whole story.
while IFS=$'\t' read -r file link; do
    target=${link%%#*}
    # Pure in-page anchor ("#invariants") or empty target.
    [ -z "$target" ] && continue
    case "$target" in
    http://* | https://* | mailto:*) continue ;;
    esac
    # Links resolve relative to the file that contains them.
    base=$(dirname "$file")
    if [ ! -e "$base/$target" ]; then
        echo "dead link in $file: ($link)"
        status=1
    fi
# PAPERS.md and SNIPPETS.md are imported reference material (paper
# retrievals, exemplar code from other repos); their links point into
# their source repositories, not into this one.
done < <(grep -RoE --include='*.md' --exclude-dir=target --exclude-dir=.git \
    --exclude=PAPERS.md --exclude=SNIPPETS.md \
    '\]\([^)]+\)' . | sed -E 's/^([^:]+):\]\((<?)([^)>]*)(>?)\)$/\1\t\3/')

if [ "$status" -eq 0 ]; then
    echo "all markdown relative links resolve"
fi
exit $status
